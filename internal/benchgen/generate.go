package benchgen

import (
	"fmt"
	"math/rand"

	"dynsum/internal/pag"
)

// Generate builds the synthetic program for profile p (already scaled) and
// the given seed. The same (profile, seed) always produces the same
// program.
//
// Construction, sized by the profile's per-kind budgets:
//
//   - A library of container classes, each with a field and a
//     setter/getter pair reached through a wrapper layer — shared,
//     high-fan-in code, the source of PPTA reuse.
//   - Payload classes with a small subtype lattice, so casts have
//     meaningful verdicts.
//   - Factory methods (fresh, via-helper, and caching violators).
//   - Application "cells": allocate a container and a payload, pipe the
//     payload through assign chains and the wrapper layer into the
//     container, read it back, cast it. Some cells store null (NullDeref
//     violations), some route their payload through a static variable.
//   - Deficit fillers that top up each edge kind towards its budget with
//     self-contained resolvable patterns.
//
// Query sites (Casts/Derefs/Factories metadata) are emitted up to the
// profile's per-client query counts, cycling over the distinct underlying
// sites when the program has fewer sites than queries — re-querying a site
// is exactly what IDE clients do and what the summary cache exploits.
func Generate(p Profile, seed int64) *pag.Program {
	prog := generate(p, seed)
	// Synthetic benchmarks are never edited after generation: freeze to
	// the CSR layout so every engine and experiment runs on the fast path.
	// (The evolve workloads keep the mutable form and partition it into
	// load-order waves instead; see evolve.go.)
	prog.G.Freeze()
	return prog
}

// generate builds the program without freezing it.
func generate(p Profile, seed int64) *pag.Program {
	g := &genState{
		p:   p,
		rng: rand.New(rand.NewSource(seed)),
		b:   pag.NewBuilder(),
		left: budgets{
			objects: p.Objects, assign: p.Assign, load: p.Load, store: p.Store,
			entry: p.Entry, exit: p.Exit, aglobal: p.AssignGlobal,
			vars: p.Vars, methods: p.Methods,
		},
	}
	g.buildClasses()
	g.buildLibrary()
	g.buildFactories()
	g.buildCells()
	g.fillDeficits()
	return g.finish()
}

type budgets struct {
	objects, assign, load, store, entry, exit, aglobal int
	vars, methods                                      int
}

type container struct {
	cls     pag.ClassID
	field   pag.FieldID
	set     pag.MethodID // set(this, v) { this.f = v }
	setThis pag.NodeID
	setV    pag.NodeID
	get     pag.MethodID // get(this) { return this.f }
	getThis pag.NodeID
	getRet  pag.NodeID
	// Two wrapper layers, like real library call chains
	// (cells call wset/wget; wset calls set1 calls set, etc.).
	wset              pag.MethodID
	wsetThis, wsetV   pag.NodeID
	wget              pag.MethodID
	wgetThis, wgetRet pag.NodeID
}

type factory struct {
	site pag.FactorySite
	good bool
}

type genState struct {
	p    Profile
	rng  *rand.Rand
	b    *pag.Builder
	left budgets

	object        pag.ClassID
	payloads      []pag.ClassID // [PA, PB(<:PA), PC, PD(<:PC)]
	payloadFields []pag.FieldID
	containers    []container
	factories     []factory
	globals       []pag.NodeID

	idMethod pag.MethodID // id(p) { return p } sink for entry/exit filling
	idParam  pag.NodeID
	idRet    pag.NodeID

	casts  []pag.CastSite
	derefs []pag.DerefSite

	// segVars buffers the variables of the assign-chain segment being
	// grown, so cycle closing (cyclic profiles) can wire chord edges
	// between segment members. Reused across segments.
	segVars []pag.NodeID

	methSeq int
}

// closeCycle turns the buffered chain segment into an assign cycle: a
// back edge from the newest variable to the segment start, plus a chord
// every third member (loop-carried copy webs are dense, not simple
// rings). All edges are paid from the assign budget. No-op until the
// segment reaches CycleLen.
func (g *genState) closeCycle() bool {
	if g.p.CycleLen <= 0 || len(g.segVars) < g.p.CycleLen || g.left.assign <= 0 {
		return false
	}
	last := g.segVars[len(g.segVars)-1]
	g.b.Copy(g.segVars[0], last)
	g.left.assign--
	for k := 3; k < len(g.segVars)-1 && g.left.assign > 0; k += 3 {
		g.b.Copy(g.segVars[k-1], g.segVars[k])
		g.left.assign--
	}
	g.segVars = g.segVars[:0]
	return true
}

// segPush appends v to the open chain segment (cyclic profiles only).
func (g *genState) segPush(v pag.NodeID) {
	if g.p.CycleLen > 0 {
		g.segVars = append(g.segVars, v)
	}
}

// segReset abandons the open segment (the chain left the method or went
// through a call hop, so a cycle across it would be illegal or bogus).
func (g *genState) segReset() { g.segVars = g.segVars[:0] }

func (g *genState) method(prefix string, cls pag.ClassID) pag.MethodID {
	g.methSeq++
	g.left.methods--
	return g.b.Method(fmt.Sprintf("%s%d", prefix, g.methSeq), cls)
}

func (g *genState) local(m pag.MethodID, name string, cls pag.ClassID) pag.NodeID {
	g.left.vars--
	return g.b.Local(m, name, cls)
}

func (g *genState) buildClasses() {
	g.object = g.b.Class("Object", pag.NoClass)
	pa := g.b.Class("PA", g.object)
	pb := g.b.Class("PB", pa)
	pc := g.b.Class("PC", g.object)
	pd := g.b.Class("PD", pc)
	g.payloads = []pag.ClassID{pa, pb, pc, pd}
	for i := range g.payloads {
		g.payloadFields = append(g.payloadFields, g.b.G.AddField(fmt.Sprintf("P%d.data", i)))
	}
	nGlobals := max(1, g.p.AssignGlobal/4)
	for i := 0; i < nGlobals; i++ {
		g.globals = append(g.globals, g.b.GlobalVar(fmt.Sprintf("G.g%d", i), g.object))
	}
}

// buildLibrary creates the shared container classes: the high-fan-in
// methods whose local paths DYNSUM summarises once and reuses.
func (g *genState) buildLibrary() {
	nContainers := min(max(1, g.p.Methods/8), 96)
	for i := 0; i < nContainers; i++ {
		cls := g.b.Class(fmt.Sprintf("C%d", i), g.object)
		fld := g.b.G.AddField(fmt.Sprintf("C%d.f", i))
		c := container{cls: cls, field: fld}

		c.set = g.method("lib.set", cls)
		c.setThis = g.local(c.set, "this", cls)
		c.setV = g.local(c.set, "v", g.object)
		g.b.Store(c.setThis, fld, c.setV)
		g.left.store--

		c.get = g.method("lib.get", cls)
		c.getThis = g.local(c.get, "this", cls)
		c.getRet = g.local(c.get, "ret", g.object)
		g.b.Load(c.getRet, c.getThis, fld)
		g.left.load--

		// Middle wrapper layer: mset/mget delegate to set/get. (The prefix
		// must not be another prefix plus digits: method() appends a global
		// sequence number, and "lib.set1"+seq 3 would alias "lib.set"+seq 13
		// — ambiguous names break open-world spec resolution by name.)
		set1 := g.method("lib.mset", cls)
		set1This := g.local(set1, "this", cls)
		set1V := g.local(set1, "v", g.object)
		g.b.Call(set1, c.set, "", []pag.NodeID{set1This, set1V}, []pag.NodeID{c.setThis, c.setV}, pag.NoNode, pag.NoNode)
		g.left.entry -= 2

		get1 := g.method("lib.mget", cls)
		get1This := g.local(get1, "this", cls)
		get1Ret := g.local(get1, "ret", g.object)
		g.b.Call(get1, c.get, "", []pag.NodeID{get1This}, []pag.NodeID{c.getThis}, c.getRet, get1Ret)
		g.left.entry--
		g.left.exit--

		// Outer wrapper layer: what application cells call.
		c.wset = g.method("lib.wset", cls)
		c.wsetThis = g.local(c.wset, "this", cls)
		c.wsetV = g.local(c.wset, "v", g.object)
		tmp := g.local(c.wset, "t", g.object)
		g.b.Copy(tmp, c.wsetV)
		g.left.assign--
		g.b.Call(c.wset, set1, "", []pag.NodeID{c.wsetThis, tmp}, []pag.NodeID{set1This, set1V}, pag.NoNode, pag.NoNode)
		g.left.entry -= 2

		c.wget = g.method("lib.wget", cls)
		c.wgetThis = g.local(c.wget, "this", cls)
		c.wgetRet = g.local(c.wget, "ret", g.object)
		g.b.Call(c.wget, get1, "", []pag.NodeID{c.wgetThis}, []pag.NodeID{get1This}, get1Ret, c.wgetRet)
		g.left.entry--
		g.left.exit--

		g.containers = append(g.containers, c)
	}

	g.idMethod = g.method("lib.id", g.object)
	g.idParam = g.local(g.idMethod, "p", g.object)
	g.idRet = g.local(g.idMethod, "ret", g.object)
	g.b.Copy(g.idRet, g.idParam)
	g.left.assign--
}

// buildFactories creates factory methods: fresh allocators (proven), a
// via-helper variant (proven across a call), and caching violators that
// return a static singleton.
func (g *genState) buildFactories() {
	n := min(g.p.QFactoryM, max(2, g.left.methods/4))
	for i := 0; i < n; i++ {
		cls := g.payloads[g.rng.Intn(len(g.payloads))]
		// Deterministic mix with the violator early so even tiny scales
		// get every verdict; one caching violator in ten, the rest fresh
		// (60%) or boxed (30%).
		kind := [10]int{0, 4, 3, 1, 0, 3, 2, 0, 3, 1}[i%10]
		switch {
		case kind < 3: // fresh: mk() { return new P }
			m := g.method("app.mk", cls)
			ret := g.local(m, "ret", cls)
			g.b.NewObject(ret, "o", cls)
			g.left.objects--
			g.factories = append(g.factories, factory{good: true,
				site: pag.FactorySite{Method: m, Ret: ret, Name: g.b.G.MethodInfo(m).Name}})
		case kind < 4: // boxed: the fresh object round-trips through a
			// method-local box with a factory-private field. Still
			// provably fresh — and provable already by the field-based
			// first pass (the private field has a single store), so
			// REFINEPTS terminates early here; the paper explains
			// FactoryM's small speedup by exactly this kind of early
			// satisfaction.
			m := g.method("app.mkBoxed", cls)
			fld := g.b.G.AddField(fmt.Sprintf("F%d.box", i))
			box := g.local(m, "box", g.object)
			g.b.NewObject(box, "ob", g.object)
			fresh := g.local(m, "fresh", cls)
			g.b.NewObject(fresh, "o", cls)
			g.left.objects -= 2
			g.b.Store(box, fld, fresh)
			g.left.store--
			ret := g.local(m, "ret", cls)
			g.b.Load(ret, box, fld)
			g.left.load--
			g.factories = append(g.factories, factory{good: true,
				site: pag.FactorySite{Method: m, Ret: ret, Name: g.b.G.MethodInfo(m).Name}})
		default: // caching violator: mk() { return G }
			m := g.method("app.mkCached", cls)
			ret := g.local(m, "ret", cls)
			gv := g.globals[g.rng.Intn(len(g.globals))]
			g.b.Copy(ret, gv)
			g.left.aglobal--
			g.factories = append(g.factories, factory{good: false,
				site: pag.FactorySite{Method: m, Ret: ret, Name: g.b.G.MethodInfo(m).Name}})
		}
	}
	// Someone must populate the caches: a setup method storing fresh
	// payloads into the globals.
	setup := g.method("app.setup", g.object)
	for _, gv := range g.globals {
		v := g.local(setup, "v", g.payloads[0])
		g.b.NewObject(v, "cached", g.payloads[0])
		g.left.objects--
		g.b.Copy(gv, v)
		g.left.aglobal--
	}
}

// buildCells emits application cells until the object budget (the scarcest
// structural resource) is spent. The paper's benchmarks have far more
// objects than methods (reachable JDK code is allocation-heavy), so many
// cells share one application method.
func (g *genState) buildCells() {
	if len(g.containers) == 0 {
		return
	}
	nApps := max(1, g.left.methods/2) // keep methods for hop sinks and fillDeficits
	apps := make([]pag.MethodID, nApps)
	for i := range apps {
		apps[i] = g.method("app.run", g.object)
	}
	// Per-app identity sinks for call-hops, so their fan-in stays
	// bounded (a single shared sink would accumulate entry edges from
	// every cell and dominate all traversals).
	hopSinks := make([]struct {
		m    pag.MethodID
		p, r pag.NodeID
	}, nApps)
	for i := range hopSinks {
		m := g.method("app.hop", g.object)
		hopSinks[i].m = m
		hopSinks[i].p = g.local(m, "p", g.object)
		hopSinks[i].r = g.local(m, "r", g.object)
		g.b.Copy(hopSinks[i].r, hopSinks[i].p)
		g.left.assign--
	}
	// Assign chains soak up much of the assign/var budgets (the paper's
	// assign-to-new ratios are high), but a quarter of the variable
	// budget is reserved for the deficit fillers; the leftover assign
	// budget is covered by chain "rungs" in fillDeficits, which reuse
	// variables.
	cellsEstimate := max(1, g.left.objects*2/5)
	chainLen := max(1, g.left.vars*3/4/cellsEstimate-8)
	if perCell := g.left.assign / cellsEstimate; chainLen > perCell {
		chainLen = max(1, perCell)
	}
	// A diamond step spends 3 variables and 4 assigns where a plain copy
	// spends 1 and 1; shorten the chains so the per-cell budgets still
	// cover them (steps degrade to plain copies once the assign budget
	// runs low, so a generous length costs nothing).
	if g.p.Diamond {
		chainLen = max(4, chainLen/2)
	}
	// Diamond profiles concentrate runs of consecutive cells in one app
	// method instead of round-robining: together with the loop-carried
	// links below, each method accumulates one deep shared copy DAG whose
	// query sites' closures nest — the overlap the memoisation exploits.
	appOf := func(cell int) int { return cell % nApps }
	if g.p.Diamond {
		appOf = func(cell int) int { return (cell / 8) % nApps }
	}
	// Cyclic profiles model each app method as one big loop over its
	// cells: every cell's payload chain is linked to the previous cell's
	// tail (a loop-carried dependence), and the last tail closes back to
	// the first head. Together with the per-CycleLen copy webs inside
	// each chain this makes the whole method's payload flow one strongly
	// connected component — the redundant-propagation shape cycle
	// collapse exists for.
	type loopState struct{ head, tail pag.NodeID }
	loops := make([]loopState, nApps)
	var chainDerefs []pag.DerefSite // per-cell buffer for deepest-first emission
	for i := range loops {
		loops[i] = loopState{head: pag.NoNode, tail: pag.NoNode}
	}
	// When the global-edge budget is rich relative to the cell count (a
	// low-locality profile), route part of each payload chain through
	// id() calls: the queried paths then really cross method boundaries,
	// which is what low locality means for the analyses. Each cell's
	// fixed calls (wset: 2 entries; wget: 1 entry, 1 exit) are reserved
	// first on both budgets.
	hopsByEntry := (g.left.entry - cellsEstimate*3) / max(1, cellsEstimate)
	hopsByExit := (g.left.exit - cellsEstimate) / max(1, cellsEstimate)
	callHops := min(max(min(hopsByEntry, hopsByExit), 0), chainLen/2)

	for cell := 0; g.left.objects >= 2; cell++ {
		ci := g.rng.Intn(len(g.containers))
		c := g.containers[ci]
		// Most cells store the payload class canonically associated with
		// their container, so many container fields are homogeneous and
		// field-based reasoning already proves their casts — the
		// situation where REFINEPTS's early termination shines (paper
		// §5.3 explains SafeCast's smaller speedup this way). A fifth of
		// the cells mix classes, which only context-sensitive,
		// field-sensitive analysis can untangle.
		pcls := g.payloads[ci%len(g.payloads)]
		if g.rng.Intn(5) == 0 {
			pcls = g.payloads[g.rng.Intn(len(g.payloads))]
		}
		m := apps[appOf(cell)]

		cv := g.local(m, "c", c.cls)
		g.b.NewObject(cv, "oc", c.cls)
		pv := g.local(m, "p", pcls)
		g.b.NewObject(pv, "op", pcls)
		g.left.objects -= 2

		// Payload chain p -> t1 -> ... -> tn, with a few dereference sites
		// along it (distinct query variables for NullDeref). The first
		// callHops hops go through the id() sink instead of a local
		// assignment (see above). A cyclic profile (CycleLen > 0) closes
		// every CycleLen consecutive local copies into an assign cycle —
		// the loop-carried copy web of a real loop — paid from the assign
		// budget; segments interrupted by a call hop never close, so all
		// cycles stay strictly method-local.
		t := pv
		segHead := pv // head of the chain's final hop-free local segment
		g.segReset()
		g.segPush(t)
		sink := hopSinks[appOf(cell)]
		for i := 0; i < chainLen && g.left.assign > 0 && g.left.vars > 0; i++ {
			nt := g.local(m, fmt.Sprintf("t%d", i), pcls)
			if i < callHops && g.left.entry > 0 && g.left.exit > 0 {
				g.b.Call(m, sink.m, "", []pag.NodeID{t}, []pag.NodeID{sink.p}, sink.r, nt)
				g.left.entry--
				g.left.exit--
				g.segReset()
				segHead = nt
			} else if g.p.Diamond && g.left.assign >= 4 && g.left.vars >= 2 {
				// Diamond step: t forks into two parallel copies that
				// rejoin at nt, so nt has two incoming assign paths and a
				// backwards (S1) traversal re-converges at t. No cycle is
				// formed — both paths point strictly upstream.
				da := g.local(m, fmt.Sprintf("da%d", i), pcls)
				db := g.local(m, fmt.Sprintf("db%d", i), pcls)
				g.b.Copy(da, t)
				g.b.Copy(db, t)
				g.b.Copy(nt, da)
				g.b.Copy(nt, db)
				g.left.assign -= 4
			} else {
				g.b.Copy(nt, t)
				g.left.assign--
				g.segPush(nt)
				g.closeCycle()
			}
			t = nt
			// Diamond profiles register a dereference every other step, so
			// the NullDeref batch queries many points of the same web and
			// the per-state memoisation has overlap to exploit; the base
			// profiles keep the paper-calibrated two sites per chain.
			if g.p.Diamond {
				if i%2 == 1 {
					chainDerefs = append(chainDerefs, pag.DerefSite{Var: nt, Name: fmt.Sprintf("cell%d.t%d.use", cell, i)})
				}
			} else if i == chainLen/3 || i == 2*chainLen/3 {
				g.derefs = append(g.derefs, pag.DerefSite{Var: nt, Name: fmt.Sprintf("cell%d.t%d.use", cell, i)})
			}
		}
		// Emit the cell's chain sites deepest-first: an IDE batch is not
		// topologically sorted, and the order is what separates the two
		// memoisation halves — the first (deepest) query walks the whole
		// prefix and writes every interior state back, so the cell's
		// remaining sites are pure cache hits; in upstream-first order
		// start-state caching alone could serve them via splices.
		for i := len(chainDerefs) - 1; i >= 0; i-- {
			g.derefs = append(g.derefs, chainDerefs[i])
		}
		chainDerefs = chainDerefs[:0]

		// Loop-carried dependence: this iteration's payload also derives
		// from the previous iteration's result (cyclic and diamond
		// profiles). The link lands on the head of the chain's final local
		// segment — never before a call hop — so for cyclic profiles the
		// method-wide cycle is closed by assign edges alone and stays a
		// legal local SCC. Diamond profiles thread the same links but
		// never close the loop (see below), leaving one method-wide copy
		// DAG whose downstream closures contain all upstream ones.
		if (g.p.CycleLen > 0 || g.p.Diamond) && g.left.assign > 0 {
			appIdx := appOf(cell)
			if ls := &loops[appIdx]; ls.head == pag.NoNode {
				ls.head, ls.tail = segHead, t
			} else {
				g.b.Copy(segHead, ls.tail)
				g.left.assign--
				ls.tail = t
			}
		}

		// Store the payload (or null, every 5th cell) through the wrapper.
		stored := t
		nullCell := cell%5 == 4
		if nullCell {
			nv := g.local(m, "n", pcls)
			g.b.NullAssign(nv)
			stored = nv
		}
		g.b.Call(m, c.wset, "", []pag.NodeID{cv, stored}, []pag.NodeID{c.wsetThis, c.wsetV}, pag.NoNode, pag.NoNode)
		g.left.entry -= 2
		g.derefs = append(g.derefs, pag.DerefSite{Var: cv, Name: fmt.Sprintf("cell%d.c.wset", cell)})

		// Read it back.
		rv := g.local(m, "r", pcls)
		g.b.Call(m, c.wget, "", []pag.NodeID{cv}, []pag.NodeID{c.wgetThis}, c.wgetRet, rv)
		g.left.entry--
		g.left.exit--
		g.derefs = append(g.derefs, pag.DerefSite{Var: rv, Name: fmt.Sprintf("cell%d.r.use", cell)})

		// Cast the result: same class (needs context sensitivity),
		// supertype (easy), or a wrong class (violation). Deterministic
		// per cell index, and kept disjoint from the null cells so a
		// wrong cast always has a real payload to flag.
		target := pcls
		switch cell % 7 {
		case 5:
			target = g.object // trivially safe
		case 2:
			target = g.payloads[(indexOf(g.payloads, pcls)+2)%len(g.payloads)] // wrong branch
		}
		castTmp := g.local(m, "cast", target)
		g.b.Copy(castTmp, rv)
		g.left.assign--
		g.casts = append(g.casts, pag.CastSite{Var: castTmp, Target: target,
			Name: fmt.Sprintf("cell%d.cast", cell)})
		// A second, locally-provable cast on the chain keeps the cast
		// density near the paper's (xalan has ~0.6 casts per object).
		g.casts = append(g.casts, pag.CastSite{Var: t, Target: pcls,
			Name: fmt.Sprintf("cell%d.cast2", cell)})

		// Extra paired field traffic on the payload, towards the
		// load/store budgets.
		pf := g.payloadFields[indexOf(g.payloads, pcls)]
		for g.left.store > 0 && g.left.load > 0 && g.rng.Intn(3) == 0 {
			src := g.local(m, "s", pcls)
			g.b.NewObject(src, "os", pcls)
			g.left.objects--
			g.b.Store(t, pf, src)
			g.left.store--
			dst := g.local(m, "d", pcls)
			g.b.Load(dst, t, pf)
			g.left.load--
			g.derefs = append(g.derefs, pag.DerefSite{Var: t, Name: fmt.Sprintf("cell%d.p.f", cell)})
			break
		}

		// Route some payloads through a static (context cleared).
		if cell%6 == 5 && g.left.aglobal >= 2 {
			gv := g.globals[g.rng.Intn(len(g.globals))]
			g.b.Copy(gv, t)
			back := g.local(m, "gb", pcls)
			g.b.Copy(back, gv)
			g.left.aglobal -= 2
		}
	}

	// Close each app method's loop: the last iteration's payload feeds the
	// first (deterministic slice order; see the loop-carried dependence
	// above). Diamond profiles leave the loop open — the whole point is a
	// deep acyclic DAG that condensation cannot collapse.
	if !g.p.Diamond {
		for _, ls := range loops {
			if ls.head != pag.NoNode && ls.tail != ls.head && g.left.assign > 0 {
				g.b.Copy(ls.head, ls.tail)
				g.left.assign--
			}
		}
	}
}

// fillDeficits tops up each edge-kind budget with small self-contained
// patterns so the generated statistics track the profile. Order matters:
// the structural kinds (load/store, entry/exit, new, global) claim their
// variables first; the assign chain then soaks up whatever variable and
// assign budget remains.
func (g *genState) fillDeficits() {
	m := g.method("app.fill", g.object)
	cls := g.payloads[0]
	fld := g.payloadFields[0]

	// Void sink and pure producer, for filling entry and exit
	// independently.
	sink := g.method("lib.sink", g.object)
	sinkP := g.local(sink, "p", cls)
	prod := g.method("lib.prod", g.object)
	prodRet := g.local(prod, "ret", cls)
	g.b.NewObject(prodRet, "o", cls)
	g.left.objects--

	anchor := g.local(m, "a0", cls)
	g.b.NewObject(anchor, "oa", cls)
	g.left.objects--

	// Paired store/loads on a fresh base (resolvable, field-sensitive).
	base := g.local(m, "b0", cls)
	g.b.NewObject(base, "ob", cls)
	g.left.objects--
	for (g.left.store > 0 || g.left.load > 0) && g.left.vars > 0 {
		if g.left.store > 0 {
			g.b.Store(base, fld, anchor)
			g.left.store--
			base2 := g.local(m, "bs", cls)
			g.b.Copy(base2, base)
			base = base2 // distinct edge endpoints each round
		}
		if g.left.load > 0 {
			d := g.local(m, "bl", cls)
			g.b.Load(d, base, fld)
			g.left.load--
		}
	}
	// Matched entry/exit pairs through the id sink, then the remainders
	// one-sidedly through the void sink / pure producer. One result
	// variable serves every call: the edges stay distinct because each
	// call site carries a fresh label.
	ir := g.local(m, "ir", cls)
	for g.left.entry > 0 && g.left.exit > 0 {
		g.b.Call(m, g.idMethod, "", []pag.NodeID{anchor}, []pag.NodeID{g.idParam}, g.idRet, ir)
		g.left.entry--
		g.left.exit--
	}
	for g.left.entry > 0 {
		g.b.Call(m, sink, "", []pag.NodeID{anchor}, []pag.NodeID{sinkP}, pag.NoNode, pag.NoNode)
		g.left.entry--
	}
	for g.left.exit > 0 {
		g.b.Call(m, prod, "", nil, nil, prodRet, ir)
		g.left.exit--
	}
	// Remaining allocations.
	for g.left.objects > 0 && g.left.vars > 0 {
		v := g.local(m, "ov", cls)
		g.b.NewObject(v, "of", cls)
		g.left.objects--
	}
	// Global traffic.
	for g.left.aglobal > 0 {
		gv := g.globals[g.rng.Intn(len(g.globals))]
		if g.left.aglobal%2 == 0 {
			g.b.Copy(gv, anchor)
		} else if g.left.vars > 0 {
			d := g.local(m, "gr", cls)
			g.b.Copy(d, gv)
		} else {
			break
		}
		g.left.aglobal--
	}
	// Assign chains soak up the remaining variables, closed into cycles
	// every CycleLen steps on the cyclic profiles (see buildCells).
	chain := []pag.NodeID{anchor}
	t := anchor
	g.segReset()
	g.segPush(t)
	for g.left.assign > 0 && g.left.vars > 0 {
		nt := g.local(m, "af", cls)
		g.b.Copy(nt, t)
		g.left.assign--
		g.segPush(nt)
		g.closeCycle()
		t = nt
		chain = append(chain, nt)
	}
	// ...and any assign budget beyond the variable budget becomes forward
	// "rungs" between existing chain variables: acyclic, points-to sets
	// unchanged, no fresh variables needed (real PAGs have ~1.6 assigns
	// per variable, so plain chains cannot absorb the whole budget).
	for gap := 2; g.left.assign > 0 && gap < len(chain); gap++ {
		for i := 0; i+gap < len(chain) && g.left.assign > 0; i++ {
			g.b.Copy(chain[i+gap], chain[i])
			g.left.assign--
		}
	}
}

// finish assembles the Program. Cast and dereference query lists are
// truncated to the profile's per-client counts — the generator produces a
// surplus of distinct sites, so queries are never duplicated (duplicated
// queries would hand REFINEPTS free memo hits and bias Table 4). Factory
// queries may cycle: distinct factory methods are bounded by the method
// budget, and re-querying a factory is what a client checking many call
// sites does anyway.
func (g *genState) finish() *pag.Program {
	prog := pag.NewProgram(g.p.Name, g.b.G)
	prog.Casts = truncate(g.casts, g.p.QSafeCast)
	prog.Derefs = truncate(g.derefs, g.p.QNullDeref)
	sites := make([]pag.FactorySite, len(g.factories))
	for i, f := range g.factories {
		sites[i] = f.site
	}
	prog.Factories = cycle(sites, g.p.QFactoryM)
	return prog
}

// truncate caps sites at n (keeping all when fewer were produced).
func truncate[T any](sites []T, n int) []T {
	if n > 0 && len(sites) > n {
		return sites[:n]
	}
	return sites
}

// cycle repeats sites until n entries (or returns all when n exceeds 0
// sites).
func cycle[T any](sites []T, n int) []T {
	if len(sites) == 0 || n <= 0 {
		return sites
	}
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sites[i%len(sites)])
	}
	return out
}

func indexOf(s []pag.ClassID, c pag.ClassID) int {
	for i, x := range s {
		if x == c {
			return i
		}
	}
	return 0
}

package benchgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dynsum/internal/openworld"
	"dynsum/internal/pag"
)

// Open-world workloads: a generated benchmark whose exact answers are known
// (the oracle) paired with a counterpart in which a fraction of the library
// methods lost their bodies (openworld.StripBodies). Because stripping is
// ID-stable, a query var means the same node in both programs and the
// soundness obligation is directly checkable: every open-world answer must
// contain the oracle's objects, with each deleted-method allocation covered
// by the owning method's blob object.
//
// Deletion targets only lib.* methods — the open-world story is missing
// library code; application methods hold the query sites and keep their
// bodies — picked deterministically from the workload seed.

// OWProfile names one open-world workload: a Table 3 base row, the fraction
// of eligible library methods to strip, and the deletion strategy.
type OWProfile struct {
	Base string
	// Fraction of eligible library methods to delete (0 < f <= 1); at
	// least one method is always deleted.
	Fraction float64
	// LeafBias restricts deletion to leaf-ish library methods (at most two
	// local edges: the setter/getter/identity layer). Leaf deletion models
	// opaque natives at the bottom of the stack — most of their flows are
	// spec-expressible, so specs recover near-oracle precision. Whole-method
	// deletion (LeafBias false) also hits wrapper layers and interior
	// call-chain methods, where blended blobs must do the work.
	LeafBias bool
}

// Name returns the workload's benchmark name, e.g. "avrora-ow25" or
// "avrora-owleaf25".
func (p OWProfile) Name() string {
	kind := "ow"
	if p.LeafBias {
		kind = "owleaf"
	}
	return fmt.Sprintf("%s-%s%d", p.Base, kind, int(p.Fraction*100+0.5))
}

// OpenWorldProfiles lists the open-world sweep: two base rows, whole-method
// and leaf-biased deletion, at growing deletion fractions.
var OpenWorldProfiles = makeOpenWorldProfiles()

func makeOpenWorldProfiles() []OWProfile {
	var out []OWProfile
	for _, base := range []string{"avrora", "luindex"} {
		for _, frac := range []float64{0.10, 0.25, 0.50} {
			out = append(out, OWProfile{Base: base, Fraction: frac, LeafBias: false})
			out = append(out, OWProfile{Base: base, Fraction: frac, LeafBias: true})
		}
	}
	return out
}

// OpenWorldProfileByName returns the named open-world workload.
func OpenWorldProfileByName(name string) (OWProfile, bool) {
	for _, p := range OpenWorldProfiles {
		if p.Name() == name {
			return p, true
		}
	}
	return OWProfile{}, false
}

// OpenWorldBench is one generated open-world workload.
type OpenWorldBench struct {
	// Oracle is the full program (frozen), the ground truth.
	Oracle *pag.Program
	// Stripped is the open-world counterpart (frozen): same node IDs, the
	// deleted methods bodyless with blob nodes appended at the tail. Its
	// query lists alias the oracle's — IDs mean the same thing.
	Stripped *pag.Program
	// Deleted lists the stripped methods, ascending.
	Deleted []pag.MethodID
	// Specs is the derived spec file for the deleted methods
	// (openworld.DeriveSpecs): the best spec the grammar admits, with
	// interior-routed methods falling back to blended.
	Specs *openworld.File
}

// GenerateOpenWorld builds the open-world workload for profile ow at the
// given scale and seed. Deterministic: the same (ow, scale, seed) produces
// the same oracle, deletion set and specs.
func GenerateOpenWorld(ow OWProfile, scale float64, seed int64) (*OpenWorldBench, error) {
	base, ok := ProfileByName(ow.Base)
	if !ok {
		return nil, fmt.Errorf("benchgen: unknown base profile %q", ow.Base)
	}
	oracle := Generate(base.Scaled(scale), seed)

	deleted := pickDeletions(oracle.G, ow, seed)
	if len(deleted) == 0 {
		return nil, fmt.Errorf("benchgen: %s: no eligible library methods to delete", ow.Name())
	}
	sg, err := openworld.StripBodies(oracle.G, deleted)
	if err != nil {
		return nil, fmt.Errorf("benchgen: %s: %w", ow.Name(), err)
	}
	sg.Freeze()

	specs, err := openworld.DeriveSpecs(oracle.G, sg)
	if err != nil {
		return nil, fmt.Errorf("benchgen: %s: %w", ow.Name(), err)
	}

	stripped := pag.NewProgram(ow.Name(), sg)
	stripped.Casts = oracle.Casts
	stripped.Derefs = oracle.Derefs
	stripped.Factories = oracle.Factories
	return &OpenWorldBench{Oracle: oracle, Stripped: stripped, Deleted: deleted, Specs: specs}, nil
}

// pickDeletions selects the methods to strip: lib.* methods (leaf-ish only
// under LeafBias), a deterministic sample of the requested fraction.
func pickDeletions(g *pag.Graph, ow OWProfile, seed int64) []pag.MethodID {
	localEdges := make([]int, g.NumMethods())
	for n := 0; n < g.NumNodes(); n++ {
		id := pag.NodeID(n)
		m := g.Node(id).Method
		if m == pag.NoMethod {
			continue
		}
		localEdges[m] += len(g.LocalOut(id))
	}
	var eligible []pag.MethodID
	for m := 0; m < g.NumMethods(); m++ {
		id := pag.MethodID(m)
		if !strings.HasPrefix(g.MethodInfo(id).Name, "lib.") {
			continue
		}
		if ow.LeafBias && localEdges[m] > 2 {
			continue
		}
		eligible = append(eligible, id)
	}
	if len(eligible) == 0 {
		return nil
	}
	n := int(float64(len(eligible))*ow.Fraction + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(eligible) {
		n = len(eligible)
	}
	// Deterministic sample: shuffle a copy with a seed-derived source, take
	// the prefix, restore ascending order.
	rng := rand.New(rand.NewSource(seed ^ 0x09e77041d))
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	picked := eligible[:n]
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	return picked
}

package benchgen

import (
	"strings"
	"testing"

	"dynsum/internal/pag"
)

func TestOpenWorldProfileNames(t *testing.T) {
	if len(OpenWorldProfiles) != 12 {
		t.Fatalf("got %d open-world profiles, want 12", len(OpenWorldProfiles))
	}
	seen := map[string]bool{}
	for _, p := range OpenWorldProfiles {
		n := p.Name()
		if seen[n] {
			t.Fatalf("duplicate profile name %s", n)
		}
		seen[n] = true
		got, ok := OpenWorldProfileByName(n)
		if !ok || got != p {
			t.Fatalf("round trip of %s failed: %+v %v", n, got, ok)
		}
	}
	if !seen["avrora-ow25"] || !seen["luindex-owleaf50"] {
		t.Fatalf("expected names missing: %v", seen)
	}
}

func TestGenerateOpenWorldDeterministic(t *testing.T) {
	ow, _ := OpenWorldProfileByName("avrora-owleaf25")
	a, err := GenerateOpenWorld(ow, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateOpenWorld(ow, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Deleted) != len(b.Deleted) {
		t.Fatalf("deletion sets differ in size: %d vs %d", len(a.Deleted), len(b.Deleted))
	}
	for i := range a.Deleted {
		if a.Deleted[i] != b.Deleted[i] {
			t.Fatalf("deletion sets differ at %d: %d vs %d", i, a.Deleted[i], b.Deleted[i])
		}
	}
	if a.Specs.Format() != b.Specs.Format() {
		t.Fatal("derived specs differ across identical generations")
	}
}

func TestGenerateOpenWorldShape(t *testing.T) {
	ow, _ := OpenWorldProfileByName("avrora-ow25")
	bench, err := GenerateOpenWorld(ow, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Stripped.G.Validate(); err != nil {
		t.Fatalf("stripped graph invalid: %v", err)
	}
	if len(bench.Deleted) == 0 {
		t.Fatal("no deletions")
	}
	for _, m := range bench.Deleted {
		name := bench.Oracle.G.MethodInfo(m).Name
		if !strings.HasPrefix(name, "lib.") {
			t.Errorf("deleted non-library method %s", name)
		}
		if _, ok := bench.Stripped.G.Bodyless(m); !ok {
			t.Errorf("deleted method %s not marked bodyless", name)
		}
	}
	// ID stability: query lists alias the oracle's and stay in range.
	for _, c := range bench.Stripped.Casts {
		if int(c.Var) >= bench.Stripped.G.NumNodes() {
			t.Fatalf("cast var %d out of range", c.Var)
		}
	}
	// The spec file covers exactly the deleted methods.
	if len(bench.Specs.Methods) != len(bench.Deleted) {
		t.Fatalf("specs cover %d methods, deleted %d", len(bench.Specs.Methods), len(bench.Deleted))
	}
}

func TestGenerateOpenWorldLeafBias(t *testing.T) {
	ow, _ := OpenWorldProfileByName("avrora-owleaf50")
	bench, err := GenerateOpenWorld(ow, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := bench.Oracle.G
	for _, m := range bench.Deleted {
		n := 0
		for nd := 0; nd < g.NumNodes(); nd++ {
			id := pag.NodeID(nd)
			if g.Node(id).Method != m {
				continue
			}
			n += len(g.LocalOut(id))
		}
		if n > 2 {
			t.Errorf("leaf-biased deletion picked %s with %d local edges",
				g.MethodInfo(m).Name, n)
		}
	}
}

// TestGeneratedMethodNamesUnique pins name uniqueness at the harness's
// bench scale: method() appends a global sequence number to its prefix, so
// a prefix that is another prefix plus digits aliases names across layers
// ("lib.set1"+seq 3 == "lib.set"+seq 13) — and duplicate names break
// open-world spec resolution, which addresses methods by name.
func TestGeneratedMethodNamesUnique(t *testing.T) {
	for _, base := range []string{"avrora", "luindex"} {
		p, _ := ProfileByName(base)
		g := Generate(p.Scaled(0.02), 1).G
		seen := make(map[string]pag.MethodID, g.NumMethods())
		for m := 0; m < g.NumMethods(); m++ {
			name := g.MethodInfo(pag.MethodID(m)).Name
			if prev, dup := seen[name]; dup {
				t.Fatalf("%s: methods %d and %d share the name %q", base, prev, m, name)
			}
			seen[name] = pag.MethodID(m)
		}
	}
}

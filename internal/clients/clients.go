// Package clients implements the paper's three demand clients (§5.2):
//
//   - SafeCast checks that every downcast (T)v is safe: all objects v may
//     point to are subtypes of T.
//   - NullDeref checks that dereferenced variables cannot be null,
//     demanding high precision (the client the paper says benefits most
//     from DYNSUM).
//   - FactoryM checks that a factory method returns a freshly allocated
//     object: everything its return variable points to is allocated in the
//     factory or its transitive callees, and never null.
//
// Each client walks its site list, issues one points-to query per site,
// and classifies the site as Proven (the property holds), Violation (a
// counterexample object was found by a fully precise answer), or Unknown
// (budget or depth exhausted: conservative).
//
// Clients drive REFINEPTS's refinement loop through core.Refinable: the
// satisfaction predicate is exactly the property, so the engine can stop
// refining as soon as an over-approximation already proves it — the early
// termination the paper credits for REFINEPTS's good SafeCast results.
//
// Engines implementing BatchAnalysis (DYNSUM) can answer a client's whole
// site list through a worker pool instead: RunParallel fans the queries
// out across goroutines sharing one summary cache and classifies the
// results in site order, producing the same Report as the serial path.
package clients

import (
	"fmt"
	"strings"

	"dynsum/internal/core"
	"dynsum/internal/intstack"
	"dynsum/internal/pag"
)

// Verdict classifies one client site.
type Verdict uint8

const (
	// Proven means the property was established.
	Proven Verdict = iota
	// Violation means a counterexample object was found.
	Violation
	// Unknown means the query exceeded its budget; clients must assume
	// the worst.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Proven:
		return "proven"
	case Violation:
		return "violation"
	}
	return "unknown"
}

// SiteResult is the outcome for one query site.
type SiteResult struct {
	Site    string
	Verdict Verdict
	Objects int // |pts| of the queried variable (0 for Unknown)
}

// Report aggregates a client run.
type Report struct {
	Client     string
	Analysis   string
	Queries    int
	Proven     int
	Violations int
	Unknown    int
	Results    []SiteResult
}

func (r *Report) add(site string, v Verdict, objects int) {
	r.Queries++
	switch v {
	case Proven:
		r.Proven++
	case Violation:
		r.Violations++
	default:
		r.Unknown++
	}
	r.Results = append(r.Results, SiteResult{Site: site, Verdict: v, Objects: objects})
}

func (r *Report) String() string {
	return fmt.Sprintf("%s/%s: %d queries, %d proven, %d violations, %d unknown",
		r.Client, r.Analysis, r.Queries, r.Proven, r.Violations, r.Unknown)
}

// Summary renders per-site detail for diagnostics.
func (r *Report) Summary() string {
	var b strings.Builder
	b.WriteString(r.String())
	b.WriteByte('\n')
	for _, s := range r.Results {
		fmt.Fprintf(&b, "  %-40s %-9s |pts|=%d\n", s.Site, s.Verdict, s.Objects)
	}
	return b.String()
}

// querySite is one client query site in canonical form: the variable to
// query and the property predicate over its points-to set. Every client is
// a site-list producer; the serial and batch execution paths below share
// the classification logic.
type querySite struct {
	name string
	v    pag.NodeID
	ok   func(*core.PointsToSet) bool
}

// safeCastSites lists the downcast sites of p: every object must be a
// subtype of the cast target (null casts to anything).
func safeCastSites(p *pag.Program) []querySite {
	g := p.G
	sites := make([]querySite, 0, len(p.Casts))
	for _, site := range p.Casts {
		target := site.Target
		sites = append(sites, querySite{
			name: site.Name,
			v:    site.Var,
			ok: func(pts *core.PointsToSet) bool {
				for _, o := range pts.Objects() {
					if g.IsNullObject(o) {
						continue // null is castable to anything
					}
					if !g.SubtypeOf(g.Node(o).Class, target) {
						return false
					}
				}
				return true
			},
		})
	}
	return sites
}

// nullDerefSites lists the dereference sites of p: the pointer must never
// be null.
func nullDerefSites(p *pag.Program) []querySite {
	g := p.G
	sites := make([]querySite, 0, len(p.Derefs))
	for _, site := range p.Derefs {
		sites = append(sites, querySite{
			name: site.Name,
			v:    site.Var,
			ok: func(pts *core.PointsToSet) bool {
				for _, o := range pts.Objects() {
					if g.IsNullObject(o) {
						return false
					}
				}
				return true
			},
		})
	}
	return sites
}

// factoryMSites lists the factory methods of p: the return variable must
// point only to objects allocated within the factory's transitive callee
// closure, and never to null.
func factoryMSites(p *pag.Program) []querySite {
	g := p.G
	sites := make([]querySite, 0, len(p.Factories))
	for _, site := range p.Factories {
		method := site.Method
		// The callee closure is a transitive call-graph walk; compute it
		// on first use so callers that only enumerate sites (Queries)
		// never pay for it. Predicates are invoked serially — once per
		// site by the classification loops, and from within a single
		// refinement loop for Refinable engines — so the lazy
		// initialisation needs no lock.
		var closure map[pag.MethodID]bool
		sites = append(sites, querySite{
			name: site.Name,
			v:    site.Ret,
			ok: func(pts *core.PointsToSet) bool {
				if closure == nil {
					closure = p.CalleeClosure(method)
				}
				for _, o := range pts.Objects() {
					if g.IsNullObject(o) {
						return false
					}
					if !closure[g.Node(o).Method] {
						return false
					}
				}
				return true
			},
		})
	}
	return sites
}

// sitesFor dispatches a client's site list by name.
func sitesFor(client string, p *pag.Program) ([]querySite, error) {
	switch client {
	case "SafeCast":
		return safeCastSites(p), nil
	case "NullDeref":
		return nullDerefSites(p), nil
	case "FactoryM":
		return factoryMSites(p), nil
	}
	return nil, fmt.Errorf("clients: unknown client %q", client)
}

// queriesOf converts a site list to its empty-context batch queries, in
// site order.
func queriesOf(sites []querySite) []core.Query {
	qs := make([]core.Query, len(sites))
	for i, s := range sites {
		qs[i] = core.Query{Var: s.v, Ctx: intstack.Empty}
	}
	return qs
}

// Queries returns the points-to queries client would issue on p, in site
// order — the batch workload handed to core.DynSum.BatchPointsTo by the
// parallel-speedup experiment and benchmarks.
func Queries(client string, p *pag.Program) ([]core.Query, error) {
	sites, err := sitesFor(client, p)
	if err != nil {
		return nil, err
	}
	return queriesOf(sites), nil
}

// query runs one points-to query, using the refinement loop when the
// engine supports it. satisfied must be monotone-friendly: true on a set
// implies the property holds for every subset.
func query(a core.Analysis, v pag.NodeID, satisfied func(*core.PointsToSet) bool) (Verdict, int) {
	if ref, ok := a.(core.Refinable); ok {
		pts, sat, err := ref.PointsToSatisfying(v, satisfied)
		if err != nil {
			return Unknown, 0
		}
		if sat || satisfied(pts) {
			return Proven, pts.Len()
		}
		return Violation, pts.Len()
	}
	pts, err := a.PointsTo(v)
	if err != nil {
		return Unknown, 0
	}
	if satisfied(pts) {
		return Proven, pts.Len()
	}
	return Violation, pts.Len()
}

// runSerial classifies every site with one query at a time.
func runSerial(client string, sites []querySite, a core.Analysis) *Report {
	rep := &Report{Client: client, Analysis: a.Name()}
	for _, s := range sites {
		v, n := query(a, s.v, s.ok)
		rep.add(s.name, v, n)
	}
	return rep
}

// classify turns one batch result into a verdict, mirroring the serial
// non-refinable path of query.
func classify(s querySite, r core.Result) (Verdict, int) {
	if r.Err != nil {
		return Unknown, 0
	}
	if s.ok(r.Pts) {
		return Proven, r.Pts.Len()
	}
	return Violation, r.Pts.Len()
}

// runBatch classifies every site from one BatchPointsTo fan-out.
func runBatch(client string, sites []querySite, a BatchAnalysis, workers int) *Report {
	results := a.BatchPointsTo(queriesOf(sites), workers)
	rep := &Report{Client: client, Analysis: a.Name()}
	for i, s := range sites {
		v, n := classify(s, results[i])
		rep.add(s.name, v, n)
	}
	return rep
}

// SafeCast checks every downcast site of p with analysis a.
func SafeCast(p *pag.Program, a core.Analysis) *Report {
	return runSerial("SafeCast", safeCastSites(p), a)
}

// NullDeref checks every dereference site of p with analysis a.
func NullDeref(p *pag.Program, a core.Analysis) *Report {
	return runSerial("NullDeref", nullDerefSites(p), a)
}

// FactoryM checks every factory method of p with analysis a: the return
// variable must point only to objects allocated within the factory's
// transitive callee closure, and never to null.
func FactoryM(p *pag.Program, a core.Analysis) *Report {
	return runSerial("FactoryM", factoryMSites(p), a)
}

// Run dispatches a client by name ("SafeCast", "NullDeref", "FactoryM").
func Run(client string, p *pag.Program, a core.Analysis) (*Report, error) {
	sites, err := sitesFor(client, p)
	if err != nil {
		return nil, err
	}
	return runSerial(client, sites, a), nil
}

// BatchAnalysis is an Analysis whose queries may execute concurrently
// through a worker pool; core.DynSum implements it.
type BatchAnalysis interface {
	core.Analysis
	BatchPointsTo(queries []core.Query, workers int) []core.Result
}

// RunParallel is Run with the client's queries fanned out across workers
// goroutines when the engine supports batching (workers <= 0 selects
// GOMAXPROCS). Engines without BatchPointsTo, Refinable engines (whose
// serial path interleaves client predicates with refinement — batching
// would lose the early-termination precision), and single-worker runs
// all fall back to the serial path, so RunParallel is always safe to
// call. The Report lists sites in the same order as Run with identical
// verdicts for every site whose query completes; sites near the query
// budget boundary may flip between a definite verdict and Unknown
// relative to a serial run, because cache warming — and so budget
// consumption — is schedule-dependent (see core.DynSum.BatchPointsTo).
func RunParallel(client string, p *pag.Program, a core.Analysis, workers int) (*Report, error) {
	sites, err := sitesFor(client, p)
	if err != nil {
		return nil, err
	}
	ba, ok := a.(BatchAnalysis)
	_, refinable := a.(core.Refinable)
	if ok && !refinable && workers != 1 {
		return runBatch(client, sites, ba, workers), nil
	}
	return runSerial(client, sites, a), nil
}

// Names lists the three clients in paper order.
func Names() []string { return []string{"SafeCast", "NullDeref", "FactoryM"} }

// Package clients implements the paper's three demand clients (§5.2):
//
//   - SafeCast checks that every downcast (T)v is safe: all objects v may
//     point to are subtypes of T.
//   - NullDeref checks that dereferenced variables cannot be null,
//     demanding high precision (the client the paper says benefits most
//     from DYNSUM).
//   - FactoryM checks that a factory method returns a freshly allocated
//     object: everything its return variable points to is allocated in the
//     factory or its transitive callees, and never null.
//
// Each client walks its site list, issues one points-to query per site,
// and classifies the site as Proven (the property holds), Violation (a
// counterexample object was found by a fully precise answer), or Unknown
// (budget or depth exhausted: conservative).
//
// Clients drive REFINEPTS's refinement loop through core.Refinable: the
// satisfaction predicate is exactly the property, so the engine can stop
// refining as soon as an over-approximation already proves it — the early
// termination the paper credits for REFINEPTS's good SafeCast results.
package clients

import (
	"fmt"
	"strings"

	"dynsum/internal/core"
	"dynsum/internal/pag"
)

// Verdict classifies one client site.
type Verdict uint8

const (
	// Proven means the property was established.
	Proven Verdict = iota
	// Violation means a counterexample object was found.
	Violation
	// Unknown means the query exceeded its budget; clients must assume
	// the worst.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Proven:
		return "proven"
	case Violation:
		return "violation"
	}
	return "unknown"
}

// SiteResult is the outcome for one query site.
type SiteResult struct {
	Site    string
	Verdict Verdict
	Objects int // |pts| of the queried variable (0 for Unknown)
}

// Report aggregates a client run.
type Report struct {
	Client     string
	Analysis   string
	Queries    int
	Proven     int
	Violations int
	Unknown    int
	Results    []SiteResult
}

func (r *Report) add(site string, v Verdict, objects int) {
	r.Queries++
	switch v {
	case Proven:
		r.Proven++
	case Violation:
		r.Violations++
	default:
		r.Unknown++
	}
	r.Results = append(r.Results, SiteResult{Site: site, Verdict: v, Objects: objects})
}

func (r *Report) String() string {
	return fmt.Sprintf("%s/%s: %d queries, %d proven, %d violations, %d unknown",
		r.Client, r.Analysis, r.Queries, r.Proven, r.Violations, r.Unknown)
}

// Summary renders per-site detail for diagnostics.
func (r *Report) Summary() string {
	var b strings.Builder
	b.WriteString(r.String())
	b.WriteByte('\n')
	for _, s := range r.Results {
		fmt.Fprintf(&b, "  %-40s %-9s |pts|=%d\n", s.Site, s.Verdict, s.Objects)
	}
	return b.String()
}

// query runs one points-to query, using the refinement loop when the
// engine supports it. satisfied must be monotone-friendly: true on a set
// implies the property holds for every subset.
func query(a core.Analysis, v pag.NodeID, satisfied func(*core.PointsToSet) bool) (Verdict, int) {
	if ref, ok := a.(core.Refinable); ok {
		pts, sat, err := ref.PointsToSatisfying(v, satisfied)
		if err != nil {
			return Unknown, 0
		}
		if sat || satisfied(pts) {
			return Proven, pts.Len()
		}
		return Violation, pts.Len()
	}
	pts, err := a.PointsTo(v)
	if err != nil {
		return Unknown, 0
	}
	if satisfied(pts) {
		return Proven, pts.Len()
	}
	return Violation, pts.Len()
}

// SafeCast checks every downcast site of p with analysis a.
func SafeCast(p *pag.Program, a core.Analysis) *Report {
	rep := &Report{Client: "SafeCast", Analysis: a.Name()}
	g := p.G
	for _, site := range p.Casts {
		ok := func(pts *core.PointsToSet) bool {
			for _, o := range pts.Objects() {
				if g.IsNullObject(o) {
					continue // null is castable to anything
				}
				if !g.SubtypeOf(g.Node(o).Class, site.Target) {
					return false
				}
			}
			return true
		}
		v, n := query(a, site.Var, ok)
		rep.add(site.Name, v, n)
	}
	return rep
}

// NullDeref checks every dereference site of p with analysis a.
func NullDeref(p *pag.Program, a core.Analysis) *Report {
	rep := &Report{Client: "NullDeref", Analysis: a.Name()}
	g := p.G
	for _, site := range p.Derefs {
		ok := func(pts *core.PointsToSet) bool {
			for _, o := range pts.Objects() {
				if g.IsNullObject(o) {
					return false
				}
			}
			return true
		}
		v, n := query(a, site.Var, ok)
		rep.add(site.Name, v, n)
	}
	return rep
}

// FactoryM checks every factory method of p with analysis a: the return
// variable must point only to objects allocated within the factory's
// transitive callee closure, and never to null.
func FactoryM(p *pag.Program, a core.Analysis) *Report {
	rep := &Report{Client: "FactoryM", Analysis: a.Name()}
	g := p.G
	for _, site := range p.Factories {
		closure := p.CalleeClosure(site.Method)
		ok := func(pts *core.PointsToSet) bool {
			for _, o := range pts.Objects() {
				if g.IsNullObject(o) {
					return false
				}
				if !closure[g.Node(o).Method] {
					return false
				}
			}
			return true
		}
		v, n := query(a, site.Ret, ok)
		rep.add(site.Name, v, n)
	}
	return rep
}

// Run dispatches a client by name ("SafeCast", "NullDeref", "FactoryM").
func Run(client string, p *pag.Program, a core.Analysis) (*Report, error) {
	switch client {
	case "SafeCast":
		return SafeCast(p, a), nil
	case "NullDeref":
		return NullDeref(p, a), nil
	case "FactoryM":
		return FactoryM(p, a), nil
	}
	return nil, fmt.Errorf("clients: unknown client %q", client)
}

// Names lists the three clients in paper order.
func Names() []string { return []string{"SafeCast", "NullDeref", "FactoryM"} }

package clients_test

import (
	"strings"
	"testing"

	"dynsum/internal/clients"
	"dynsum/internal/core"
	"dynsum/internal/fixture"
	"dynsum/internal/mj"
	"dynsum/internal/refine"
	"dynsum/internal/stasum"
)

func engines(p *fixture.Figure2) []core.Analysis {
	return []core.Analysis{
		core.NewDynSum(p.Prog.G, core.Config{}, nil),
		refine.NewNoRefine(p.Prog.G, core.Config{}, nil),
		refine.NewRefinePts(p.Prog.G, core.Config{}, nil),
		stasum.New(p.Prog.G, core.Config{}, nil),
	}
}

// TestSafeCastFigure2: (Integer)s1 is safe, (Integer)s2 is not — and every
// engine must agree (paper §3.4 resolves exactly this).
func TestSafeCastFigure2(t *testing.T) {
	f := fixture.BuildFigure2()
	for _, a := range engines(f) {
		rep := clients.SafeCast(f.Prog, a)
		if rep.Queries != 2 {
			t.Fatalf("%s: queries = %d, want 2", a.Name(), rep.Queries)
		}
		if rep.Proven != 1 || rep.Violations != 1 || rep.Unknown != 0 {
			t.Errorf("%s: %s", a.Name(), rep.Summary())
		}
		// The proven site must be the s1 cast.
		for _, r := range rep.Results {
			want := clients.Violation
			if strings.Contains(r.Site, "s1") {
				want = clients.Proven
			}
			if r.Verdict != want {
				t.Errorf("%s: site %s = %s, want %s", a.Name(), r.Site, r.Verdict, want)
			}
		}
	}
}

func TestNullDerefFigure2(t *testing.T) {
	f := fixture.BuildFigure2()
	// Figure 2 has no null assignments: both deref sites are proven.
	for _, a := range engines(f) {
		rep := clients.NullDeref(f.Prog, a)
		if rep.Proven != rep.Queries || rep.Violations != 0 {
			t.Errorf("%s: %s", a.Name(), rep.Summary())
		}
	}
}

const factorySrc = `
class Widget {}
class Store {
  static Widget shared;
  Widget createFresh() { return new Widget(); }
  Widget createViaHelper() { return this.helper(); }
  Widget helper() { return new Widget(); }
  Widget createCached() { return Store.shared; }
  Widget createNull() { return null; }
  static void main() {
    Store s; Widget w;
    s = new Store();
    Store.shared = new Widget();
    w = s.createFresh();
    w = s.createViaHelper();
    w = s.createCached();
    w = s.createNull();
  }
}
`

// TestFactoryM distinguishes fresh allocation (direct and through a
// callee) from returning a cached global or null.
func TestFactoryM(t *testing.T) {
	prog, _, err := mj.Compile("factory", factorySrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() core.Analysis{
		func() core.Analysis { return core.NewDynSum(prog.G, core.Config{}, nil) },
		func() core.Analysis { return refine.NewRefinePts(prog.G, core.Config{}, nil) },
	} {
		a := mk()
		rep := clients.FactoryM(prog, a)
		if rep.Queries != 4 {
			t.Fatalf("%s: queries = %d, want 4 factories: %s", a.Name(), rep.Queries, rep.Summary())
		}
		want := map[string]clients.Verdict{
			"Store.createFresh":     clients.Proven,
			"Store.createViaHelper": clients.Proven,
			"Store.createCached":    clients.Violation,
			"Store.createNull":      clients.Violation,
		}
		for _, r := range rep.Results {
			if w, ok := want[r.Site]; ok && r.Verdict != w {
				t.Errorf("%s: %s = %s, want %s", a.Name(), r.Site, r.Verdict, w)
			}
		}
	}
}

const nullableSrc = `
class Node1 { Node1 next1; void use() {} }
class Main {
  static void main() {
    Node1 n; Node1 m;
    n = new Node1();
    n.next1 = null;
    m = n.next1;
    m.use();
  }
}
`

func TestNullDerefViolation(t *testing.T) {
	prog, _, err := mj.Compile("nullable", nullableSrc)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewDynSum(prog.G, core.Config{}, nil)
	rep := clients.NullDeref(prog, a)
	if rep.Violations == 0 {
		t.Errorf("no violation found for m.use() where m may be null: %s", rep.Summary())
	}
	if rep.Proven == 0 {
		t.Errorf("derefs of n should be proven: %s", rep.Summary())
	}
	if rep.Unknown != 0 {
		t.Errorf("unexpected unknowns: %s", rep.Summary())
	}
}

// TestRefinementEarlyTermination: on SafeCast, REFINEPTS must satisfy some
// queries without full refinement (fewer refinement iterations than the
// worst case), demonstrating the client-driven early exit.
func TestRefinementEarlyTermination(t *testing.T) {
	f := fixture.BuildFigure2()
	ref := refine.NewRefinePts(f.Prog.G, core.Config{}, nil)
	clients.SafeCast(f.Prog, ref)
	satisfiedEarly := ref.Metrics().RefineIters < 2*ref.Metrics().Queries
	// s1's safe cast needs refinement (field-based sees o29 too); but the
	// point is the loop stops as soon as the client is happy.
	if ref.Metrics().Queries != 2 {
		t.Fatalf("queries = %d", ref.Metrics().Queries)
	}
	_ = satisfiedEarly // iterations are validated more strictly in refine's own tests
}

func TestRunDispatch(t *testing.T) {
	f := fixture.BuildFigure2()
	a := core.NewDynSum(f.Prog.G, core.Config{}, nil)
	for _, name := range clients.Names() {
		rep, err := clients.Run(name, f.Prog, a)
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if rep.Client != name {
			t.Errorf("report client = %s, want %s", rep.Client, name)
		}
	}
	if _, err := clients.Run("Bogus", f.Prog, a); err == nil {
		t.Error("Run with unknown client succeeded")
	}
}

// TestRunParallelMatchesSerial: for every client, the batched worker-pool
// path must produce site-for-site the same Report a serial run does, at
// several worker counts; engines without BatchPointsTo fall back serially.
func TestRunParallelMatchesSerial(t *testing.T) {
	f := fixture.BuildFigure2()
	for _, name := range clients.Names() {
		serial, err := clients.Run(name, f.Prog, core.NewDynSum(f.Prog.G, core.Config{}, nil))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4} {
			par, err := clients.RunParallel(name, f.Prog,
				core.NewDynSum(f.Prog.G, core.Config{}, nil), workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Results) != len(serial.Results) {
				t.Fatalf("%s workers=%d: %d sites vs serial %d",
					name, workers, len(par.Results), len(serial.Results))
			}
			for i, r := range par.Results {
				s := serial.Results[i]
				if r.Site != s.Site || r.Verdict != s.Verdict || r.Objects != s.Objects {
					t.Errorf("%s workers=%d site %d: %+v != serial %+v", name, workers, i, r, s)
				}
			}
		}
		// Non-batch engine: must fall back to the serial path untouched.
		par, err := clients.RunParallel(name, f.Prog,
			refine.NewRefinePts(f.Prog.G, core.Config{}, nil), 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Queries != serial.Queries {
			t.Errorf("%s: refinepts fallback queries = %d, want %d", name, par.Queries, serial.Queries)
		}
	}
}

// TestUnknownOnTinyBudget: with a 1-step budget everything is Unknown.
func TestUnknownOnTinyBudget(t *testing.T) {
	f := fixture.BuildFigure2()
	a := core.NewDynSum(f.Prog.G, core.Config{Budget: 1}, nil)
	rep := clients.SafeCast(f.Prog, a)
	if rep.Unknown != rep.Queries {
		t.Errorf("want all unknown on tiny budget: %s", rep.Summary())
	}
}

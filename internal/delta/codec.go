package delta

import (
	"encoding/binary"
	"fmt"

	"dynsum/internal/pag"
)

// This file gives Log a wire form for the persistence journal
// (internal/persist/journal): one epoch of recorded program changes as a
// flat little-endian record, including the base counts the log was
// positioned at so a decoded log replays through the exact validate()
// gate a live one does. Encoding and decoding live in this package
// because a Log's fields are deliberately unexported.
//
// The decoder is panic-free on arbitrary input: every read is
// bounds-checked and every count is verified against the bytes that
// remain before allocating, so a corrupted or adversarial record costs a
// typed error, never an out-of-range index or an absurd allocation.

// logWireVersion guards the record layout; bump on any change.
const logWireVersion = 1

// AppendBinary appends l's wire encoding to dst and returns the extended
// slice.
func (l *Log) AppendBinary(dst []byte) []byte {
	dst = append(dst, logWireVersion)
	dst = appendU32(dst, uint32(l.baseMethods))
	dst = appendU32(dst, uint32(l.baseNodes))
	dst = appendU32(dst, uint32(l.baseCallSites))

	dst = appendU32(dst, uint32(len(l.methods)))
	for _, m := range l.methods {
		dst = appendString(dst, m.Name)
		dst = appendU32(dst, uint32(m.Class))
	}
	dst = appendU32(dst, uint32(len(l.callSites)))
	for _, cs := range l.callSites {
		dst = appendU32(dst, uint32(cs.Caller))
		dst = appendString(dst, cs.Name)
		dst = appendU32(dst, uint32(len(cs.Targets)))
		for _, t := range cs.Targets {
			dst = appendU32(dst, uint32(t))
		}
	}
	dst = appendU32(dst, uint32(len(l.nodes)))
	for _, n := range l.nodes {
		dst = append(dst, byte(n.Kind))
		dst = appendU32(dst, uint32(n.Method))
		dst = appendU32(dst, uint32(n.Class))
		dst = appendString(dst, n.Name)
	}
	dst = appendU32(dst, uint32(len(l.edges)))
	for _, e := range l.edges {
		dst = appendU32(dst, uint32(e.Src))
		dst = appendU32(dst, uint32(e.Dst))
		dst = append(dst, byte(e.Kind))
		dst = appendU32(dst, uint32(e.Label))
	}
	dst = appendU32(dst, uint32(len(l.redefined)))
	for _, m := range l.redefined {
		dst = appendU32(dst, uint32(m))
	}
	return dst
}

// DecodeLog parses one wire-encoded Log. Trailing bytes are an error: a
// record either decodes exactly or is corrupt.
func DecodeLog(data []byte) (*Log, error) {
	c := cursor{data: data}
	v, err := c.u8()
	if err != nil {
		return nil, err
	}
	if v != logWireVersion {
		return nil, fmt.Errorf("delta: log wire version %d, want %d", v, logWireVersion)
	}
	l := new(Log)
	if l.baseMethods, err = c.count(); err != nil {
		return nil, err
	}
	if l.baseNodes, err = c.count(); err != nil {
		return nil, err
	}
	if l.baseCallSites, err = c.count(); err != nil {
		return nil, err
	}

	// Element minimum sizes on the wire, used to bound allocations.
	nm, err := c.sliceLen(1 + 4) // name len + class
	if err != nil {
		return nil, err
	}
	l.methods = make([]pag.Method, 0, nm)
	for i := 0; i < nm; i++ {
		var m pag.Method
		if m.Name, err = c.str(); err != nil {
			return nil, err
		}
		var cl uint32
		if cl, err = c.u32(); err != nil {
			return nil, err
		}
		m.Class = pag.ClassID(cl)
		l.methods = append(l.methods, m)
	}

	ncs, err := c.sliceLen(4 + 1 + 4)
	if err != nil {
		return nil, err
	}
	l.callSites = make([]pag.CallSite, 0, ncs)
	for i := 0; i < ncs; i++ {
		var cs pag.CallSite
		var caller uint32
		if caller, err = c.u32(); err != nil {
			return nil, err
		}
		cs.Caller = pag.MethodID(caller)
		if cs.Name, err = c.str(); err != nil {
			return nil, err
		}
		var nt int
		if nt, err = c.sliceLen(4); err != nil {
			return nil, err
		}
		if nt > 0 {
			cs.Targets = make([]pag.MethodID, 0, nt)
		}
		for j := 0; j < nt; j++ {
			var t uint32
			if t, err = c.u32(); err != nil {
				return nil, err
			}
			cs.Targets = append(cs.Targets, pag.MethodID(t))
		}
		l.callSites = append(l.callSites, cs)
	}

	nn, err := c.sliceLen(1 + 4 + 4 + 1)
	if err != nil {
		return nil, err
	}
	l.nodes = make([]pag.Node, 0, nn)
	for i := 0; i < nn; i++ {
		var nd pag.Node
		var kind uint8
		if kind, err = c.u8(); err != nil {
			return nil, err
		}
		nd.Kind = pag.NodeKind(kind)
		var mth, cl uint32
		if mth, err = c.u32(); err != nil {
			return nil, err
		}
		if cl, err = c.u32(); err != nil {
			return nil, err
		}
		nd.Method = pag.MethodID(mth)
		nd.Class = pag.ClassID(cl)
		if nd.Name, err = c.str(); err != nil {
			return nil, err
		}
		l.nodes = append(l.nodes, nd)
	}

	ne, err := c.sliceLen(4 + 4 + 1 + 4)
	if err != nil {
		return nil, err
	}
	l.edges = make([]pag.Edge, 0, ne)
	for i := 0; i < ne; i++ {
		var src, dst, label uint32
		var kind uint8
		if src, err = c.u32(); err != nil {
			return nil, err
		}
		if dst, err = c.u32(); err != nil {
			return nil, err
		}
		if kind, err = c.u8(); err != nil {
			return nil, err
		}
		if label, err = c.u32(); err != nil {
			return nil, err
		}
		if int(kind) >= pag.NumEdgeKinds {
			return nil, fmt.Errorf("delta: log edge %d has invalid kind %d", i, kind)
		}
		l.edges = append(l.edges, pag.Edge{
			Src: pag.NodeID(src), Dst: pag.NodeID(dst),
			Kind: pag.EdgeKind(kind), Label: int32(label),
		})
	}

	nr, err := c.sliceLen(4)
	if err != nil {
		return nil, err
	}
	l.redefined = make([]pag.MethodID, 0, nr)
	for i := 0; i < nr; i++ {
		var m uint32
		if m, err = c.u32(); err != nil {
			return nil, err
		}
		l.redefined = append(l.redefined, pag.MethodID(m))
	}

	if len(c.data) != c.off {
		return nil, fmt.Errorf("delta: log record has %d trailing bytes", len(c.data)-c.off)
	}
	return l, nil
}

// cursor is the bounds-checked reader behind DecodeLog.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) u8() (uint8, error) {
	if c.off+1 > len(c.data) {
		return 0, fmt.Errorf("delta: log record truncated at offset %d", c.off)
	}
	v := c.data[c.off]
	c.off++
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.off+4 > len(c.data) {
		return 0, fmt.Errorf("delta: log record truncated at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint32(c.data[c.off:])
	c.off += 4
	return v, nil
}

// count reads a non-negative int-sized u32.
func (c *cursor) count() (int, error) {
	v, err := c.u32()
	if err != nil {
		return 0, err
	}
	if int64(v) > int64(int32(^uint32(0)>>1)) {
		return 0, fmt.Errorf("delta: log count %d out of range", v)
	}
	return int(v), nil
}

// sliceLen reads an element count and verifies that many elements of at
// least minSize bytes can still follow, so corrupted counts cannot drive
// huge speculative allocations.
func (c *cursor) sliceLen(minSize int) (int, error) {
	n, err := c.count()
	if err != nil {
		return 0, err
	}
	if n*minSize > len(c.data)-c.off {
		return 0, fmt.Errorf("delta: log claims %d elements with only %d bytes left", n, len(c.data)-c.off)
	}
	return n, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.u8()
	if err != nil {
		return "", err
	}
	ln := int(n)
	if ln == 255 {
		// Long form: names over 254 bytes carry an explicit u32 length.
		if ln, err = c.sliceLen(1); err != nil {
			return "", err
		}
	}
	if c.off+ln > len(c.data) {
		return "", fmt.Errorf("delta: log string truncated at offset %d", c.off)
	}
	s := string(c.data[c.off : c.off+ln])
	c.off += ln
	return s, nil
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendString(dst []byte, s string) []byte {
	if len(s) < 255 {
		dst = append(dst, byte(len(s)))
	} else {
		dst = append(dst, 255)
		dst = appendU32(dst, uint32(len(s)))
	}
	return append(dst, s...)
}

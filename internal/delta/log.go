// Package delta makes a frozen PAG evolve: it implements the epoch-based
// overlay that lets the paper's headline *dynamic* scenario — code arriving
// while the analysis is live (class loading, JIT recompilation, an IDE
// session) — run on the frozen CSR layout that every optimisation in this
// repository lives on, instead of being exiled to the slow mutable builder
// form.
//
// The model is a change log applied in epochs. A Log records structured,
// method-granular program changes:
//
//   - AddMethod / AddCallSite / AddNode: new program elements (a class
//     being loaded brings its methods, their variables and objects, and
//     the call sites in their bodies).
//   - AddEdge: new PAG edges, into new or existing methods (a new caller
//     adds entry/exit edges into existing code; a loaded class wires its
//     statements).
//   - RedefineMethod: a method is recompiled — every edge owned by the
//     method is dropped, and the log's AddNode/AddEdge entries for that
//     method form its replacement body.
//
// Applying a Log to an Overlay advances the overlay by one epoch: patched
// nodes gain per-node overlay adjacency (base CSR spans stay untouched and
// keep serving every unpatched node), the freeze-time condensation is
// repaired locally (SCCs of patched methods dissolve into singletons,
// untouched SCCs keep their representatives and therefore their shared
// summaries), and the apply result names exactly the methods whose cached
// PPTA summaries must be invalidated — the engine does that through its
// O(method) per-method cache index.
//
// The overlay view preserves the local-first/global-last adjacency
// partition, so the query engines resolve it exactly like the condensation
// overlay: one predictable branch per access, and the PPTA, the
// memoisation and the splice-in path run unmodified on evolved graphs.
// Once the overlay outgrows a configurable fraction of the base, Compact
// merges it into a fresh frozen CSR with a full recondense.
package delta

import (
	"fmt"

	"dynsum/internal/pag"
)

// Log is one epoch's worth of recorded program changes. Create one with
// Overlay.NewLog (or core.DynSum.NewDeltaLog at the engine level) so it is
// positioned at the overlay's current method/node/call-site counts; IDs
// returned by the Add methods are the IDs the elements will carry once the
// log is applied. A Log is single-use: Apply consumes it.
type Log struct {
	// Snapshot of the overlay's counters at creation; Apply validates
	// these so stale logs (created before another epoch landed) fail
	// loudly instead of mis-numbering their elements.
	baseMethods   int
	baseNodes     int
	baseCallSites int

	methods   []pag.Method
	callSites []pag.CallSite
	nodes     []pag.Node
	edges     []pag.Edge
	redefined []pag.MethodID
}

// NewLog starts an empty log positioned at the given element counts.
// Prefer Overlay.NewLog, which fills the counts in.
func NewLog(numMethods, numNodes, numCallSites int) *Log {
	return &Log{baseMethods: numMethods, baseNodes: numNodes, baseCallSites: numCallSites}
}

// AddMethod records a new method and returns the ID it will carry after
// this log is applied.
func (l *Log) AddMethod(name string, class pag.ClassID) pag.MethodID {
	l.methods = append(l.methods, pag.Method{Name: name, Class: class})
	return pag.MethodID(l.baseMethods + len(l.methods) - 1)
}

// AddCallSite records a new call site (metadata for entry/exit edge
// labels) and returns its post-apply ID. cs.Caller may be an existing or a
// log-added method.
func (l *Log) AddCallSite(cs pag.CallSite) pag.CallSiteID {
	l.callSites = append(l.callSites, cs)
	return pag.CallSiteID(l.baseCallSites + len(l.callSites) - 1)
}

// AddNode records a new node — in a log-added method, or in an existing
// one (a recompiled body's fresh temporaries) — and returns its post-apply
// ID.
func (l *Log) AddNode(kind pag.NodeKind, method pag.MethodID, class pag.ClassID, name string) pag.NodeID {
	l.nodes = append(l.nodes, pag.Node{Kind: kind, Method: method, Class: class, Name: name})
	return pag.NodeID(l.baseNodes + len(l.nodes) - 1)
}

// AddEdge records a new edge. Endpoints may mix existing and log-added
// nodes; labels reference existing or log-added call sites. Duplicates of
// edges already present (and not dropped by a redefinition in this log)
// are suppressed at apply time, mirroring Graph.AddEdge.
func (l *Log) AddEdge(e pag.Edge) {
	l.edges = append(l.edges, e)
}

// RedefineMethod records that method m was recompiled: applying the log
// drops every edge owned by m — its local edges, the entry/exit edges of
// its call sites, and its assignglobal statements — before the log's
// AddNode/AddEdge entries install the replacement body. m must be a
// pre-existing method. Call-site metadata of the old body is retained
// (labels stay resolvable); its edges are gone.
func (l *Log) RedefineMethod(m pag.MethodID) {
	l.redefined = append(l.redefined, m)
}

// BaseCounts returns the method/node/call-site counts the log was
// positioned at — the state it expects the overlay to be in when applied.
func (l *Log) BaseCounts() (methods, nodes, callSites int) {
	return l.baseMethods, l.baseNodes, l.baseCallSites
}

// Empty reports whether the log records no change at all.
func (l *Log) Empty() bool {
	return len(l.methods) == 0 && len(l.callSites) == 0 && len(l.nodes) == 0 &&
		len(l.edges) == 0 && len(l.redefined) == 0
}

// validate checks the log against the overlay it is about to be applied
// to. It runs before any mutation, so a rejected log leaves the overlay
// (and the base graph's metadata tables) untouched.
func (l *Log) validate(o *Overlay) error {
	if l.baseMethods != o.NumMethods() || l.baseNodes != o.NumNodes() || l.baseCallSites != o.NumCallSites() {
		return fmt.Errorf("delta: stale log (created at %d methods/%d nodes/%d call sites, overlay now at %d/%d/%d); create the log after the previous epoch",
			l.baseMethods, l.baseNodes, l.baseCallSites,
			o.NumMethods(), o.NumNodes(), o.NumCallSites())
	}
	numMethods := l.baseMethods + len(l.methods)
	numNodes := l.baseNodes + len(l.nodes)
	numCallSites := l.baseCallSites + len(l.callSites)

	methodOK := func(m pag.MethodID) bool { return m >= 0 && int(m) < numMethods }
	for i, m := range l.methods {
		if m.Class != pag.NoClass && int(m.Class) >= o.g.NumClasses() {
			return fmt.Errorf("delta: added method %q has unknown class %d", m.Name, m.Class)
		}
		_ = i
	}
	for _, cs := range l.callSites {
		if !methodOK(cs.Caller) {
			return fmt.Errorf("delta: call site %q has unknown caller method %d", cs.Name, cs.Caller)
		}
		// Targets are pure metadata and may name methods that arrive in a
		// later epoch — a call into code not yet loaded — so only their
		// sign is checked.
		for _, t := range cs.Targets {
			if t < 0 {
				return fmt.Errorf("delta: call site %q has negative target method %d", cs.Name, t)
			}
		}
	}
	for _, n := range l.nodes {
		switch n.Kind {
		case pag.Global:
			if n.Method != pag.NoMethod {
				return fmt.Errorf("delta: added global %q carries method %d; globals have none", n.Name, n.Method)
			}
		default:
			if !methodOK(n.Method) {
				return fmt.Errorf("delta: added node %q has unknown method %d", n.Name, n.Method)
			}
		}
	}
	for _, m := range l.redefined {
		if m < 0 || int(m) >= l.baseMethods {
			return fmt.Errorf("delta: RedefineMethod(%d) names no pre-existing method", m)
		}
	}

	nodeMeta := func(n pag.NodeID) pag.Node {
		if int(n) < l.baseNodes {
			return o.Node(n)
		}
		return l.nodes[int(n)-l.baseNodes]
	}
	for _, e := range l.edges {
		if e.Src < 0 || int(e.Src) >= numNodes || e.Dst < 0 || int(e.Dst) >= numNodes {
			return fmt.Errorf("delta: edge %v endpoint out of range", e)
		}
		src, dst := nodeMeta(e.Src), nodeMeta(e.Dst)
		switch e.Kind {
		case pag.New:
			if src.Kind != pag.Object {
				return fmt.Errorf("delta: new edge %d->%d must originate at an object", e.Src, e.Dst)
			}
			if dst.Kind == pag.Global {
				return fmt.Errorf("delta: new edge %d->%d targets a global", e.Src, e.Dst)
			}
		case pag.Load, pag.Store:
			if e.Field() < 0 || int(e.Field()) >= o.g.NumFields() {
				return fmt.Errorf("delta: %s edge %d->%d has unknown field %d", e.Kind, e.Src, e.Dst, e.Label)
			}
		case pag.Entry, pag.Exit:
			if e.Site() < 0 || int(e.Site()) >= numCallSites {
				return fmt.Errorf("delta: %s edge %d->%d has unknown call site %d", e.Kind, e.Src, e.Dst, e.Label)
			}
		case pag.Assign:
			if src.Kind == pag.Global || dst.Kind == pag.Global {
				return fmt.Errorf("delta: assign edge %d->%d touches a global; use assignglobal", e.Src, e.Dst)
			}
		}
		if e.Kind.IsLocal() {
			if e.Kind != pag.New && (src.Kind == pag.Global || dst.Kind == pag.Global) {
				return fmt.Errorf("delta: local %s edge %d->%d touches a global node", e.Kind, e.Src, e.Dst)
			}
			if src.Method != dst.Method {
				return fmt.Errorf("delta: local %s edge %d->%d crosses methods %d and %d",
					e.Kind, e.Src, e.Dst, src.Method, dst.Method)
			}
		}
	}
	return nil
}

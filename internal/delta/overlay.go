package delta

import (
	"fmt"
	"slices"

	"dynsum/internal/pag"
)

// This file implements the epoch overlay itself: the mutable view a frozen
// PAG evolves through.
//
// Representation. The base graph's CSR arrays are never touched. A node
// whose adjacency an epoch changes — an endpoint of an added or dropped
// edge, or a node added by the epoch — becomes *patched*: it gets a
// per-node replacement adjacency (its current edges minus drops plus adds,
// still partitioned local-first/global-last), and a dense patch table maps
// node IDs to these entries with -1 for the untouched majority. An
// adjacency read is therefore one array load and one predictable branch
// away from the base layout — the same cost shape as the condensation
// overlay, which is what lets core's graphView resolve both without the
// engines changing.
//
// Two views are maintained, mirroring the two adjacency modes the engines
// run in:
//
//   - the base view: true node endpoints, used when condensation is
//     disabled;
//   - the condensed view: endpoints mapped through the *repaired*
//     representative function. Methods whose local edges change have their
//     assign SCCs dissolved into singletons (a changed body voids the
//     cycle proof), while untouched SCCs keep their representatives — and
//     therefore their representative-keyed shared summaries. Repair is
//     local: only the dissolved methods' nodes, the endpoints of changed
//     edges, and the representatives global-edge-adjacent to dissolved
//     members get rebuilt condensed spans; everything else keeps reading
//     the freeze-time condensation.
//
// The overlay is fully self-contained: added node, method and call-site
// records live in overlay-side tables (resolved through Overlay.Node /
// MethodInfo / CallSiteInfo) and the base graph is never written. Several
// engines can therefore evolve independent overlays over one shared frozen
// base, and dropping an overlay rolls its epochs back for free.
//
// Soundness of the invalidation contract (the TouchedMethods an Apply
// returns): a cached PPTA summary is the closure of one state over local
// edges, which never leave the state's method, plus the global-edge flags
// of the visited nodes, which gate frontier membership. A summary can
// therefore only be invalidated by (a) a local-edge change in its method
// or (b) a global-edge flag flipping on one of its method's nodes — both
// are reported as touched. Everything else a wave does (new methods, new
// global edges between already-flagged nodes) leaves every cached closure
// exact, because the driver expands frontier states over the live global
// spans on every query. DESIGN.md §10 spells the argument out.

// DefaultCompactFraction is the overlay-size trigger engines use for
// automatic compaction: once the overlay holds more than this fraction of
// the base graph's edge records, the indirection (and the dissolved
// condensation) has eaten enough of the frozen layout's advantage that a
// full re-freeze pays for itself.
const DefaultCompactFraction = 0.5

// Overlay is the epoch-stamped delta view over one frozen Graph. It is
// not safe for concurrent mutation: Apply and Compact require the same
// quiescence as every other engine mutator (no queries in flight).
// Concurrent reads between epochs are safe.
type Overlay struct {
	g       *pag.Graph
	cond    *pag.Condensation
	trivial bool // base condensation has no nontrivial SCC: the views coincide

	baseNodes     int
	baseMethods   int
	baseCallSites int
	epoch         int

	addedNodes     []pag.Node
	addedMethods   []pag.Method
	addedCallSites []pag.CallSite

	// patchBase/patchCond index the per-view patched adjacency; -1 means
	// the node reads the base (respectively freeze-time condensed) spans.
	patchBase []int32
	patchCond []int32
	baseAdj   []patchAdj
	condAdj   []patchAdj

	// rep is the repaired representative array (condensed view), covering
	// every node; nil until the first epoch on a nontrivially-condensed
	// base (reads fall through to the freeze-time condensation).
	rep []pag.NodeID
	// groups holds the surviving nontrivial SCCs: representative → sorted
	// members (representative included). Dissolved groups are removed.
	groups map[pag.NodeID][]pag.NodeID

	// methodNodes indexes every method's nodes (built on first Apply,
	// extended incrementally); the unit of redefinition and invalidation.
	methodNodes [][]pag.NodeID

	// methodNbrs is the reverse-dependency sketch: for each method, the
	// set of methods sharing a global edge with it. It bounds the set of
	// methods that could in principle depend on a touched method — the
	// ApplyStats report invalidated-vs-dependent against it, making the
	// "no cascade needed" argument measurable.
	methodNbrs map[pag.MethodID]map[pag.MethodID]bool

	patchedMethods map[pag.MethodID]bool

	overlayEdges  int // out-direction edge records across baseAdj
	droppedEdges  int // cumulative
	dissolvedSCCs int // cumulative
	rebuiltReps   int // cumulative

	// committing is held across Apply's commit phase: true means an epoch
	// is (or was, if an abort escaped) mid-installation and the overlay's
	// invariants cannot be trusted. See Broken.
	committing bool
}

// patchAdj is one patched node's replacement adjacency: full out/in edge
// lists partitioned local-first, with the split recorded — the same
// contract as a CSR span.
type patchAdj struct {
	out, in           []pag.Edge
	outSplit, inSplit int32
}

// NewOverlay starts an empty overlay (epoch 0) over a frozen graph.
func NewOverlay(g *pag.Graph) (*Overlay, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("delta: overlay requires a frozen graph; mutable graphs take edits directly")
	}
	cond := g.Condensation()
	return &Overlay{
		g:              g,
		cond:           cond,
		trivial:        cond == nil || cond.Trivial(),
		baseNodes:      g.NumNodes(),
		baseMethods:    g.NumMethods(),
		baseCallSites:  g.NumCallSites(),
		patchBase:      makeNegative(g.NumNodes()),
		patchCond:      makeNegative(g.NumNodes()),
		patchedMethods: make(map[pag.MethodID]bool),
	}, nil
}

func makeNegative(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// Graph returns the frozen base graph.
func (o *Overlay) Graph() *pag.Graph { return o.g }

// Epoch returns the number of applied epochs.
func (o *Overlay) Epoch() int { return o.epoch }

// NewLog starts a change log positioned at the overlay's current counts.
func (o *Overlay) NewLog() *Log {
	return NewLog(o.NumMethods(), o.NumNodes(), o.NumCallSites())
}

// NumNodes returns the total node count, added nodes included.
func (o *Overlay) NumNodes() int { return o.baseNodes + len(o.addedNodes) }

// NumMethods returns the total method count, added methods included.
func (o *Overlay) NumMethods() int { return o.baseMethods + len(o.addedMethods) }

// NumCallSites returns the total call-site count, added sites included.
func (o *Overlay) NumCallSites() int { return o.baseCallSites + len(o.addedCallSites) }

// MethodInfo returns method metadata, resolving added methods from the
// overlay.
func (o *Overlay) MethodInfo(m pag.MethodID) pag.Method {
	if int(m) < o.baseMethods {
		return o.g.MethodInfo(m)
	}
	return o.addedMethods[int(m)-o.baseMethods]
}

// CallSiteInfo returns call-site metadata, resolving added sites from the
// overlay.
func (o *Overlay) CallSiteInfo(cs pag.CallSiteID) pag.CallSite {
	if int(cs) < o.baseCallSites {
		return o.g.CallSiteInfo(cs)
	}
	return o.addedCallSites[int(cs)-o.baseCallSites]
}

// Node returns node metadata, resolving added nodes from the overlay.
func (o *Overlay) Node(n pag.NodeID) pag.Node {
	if int(n) < o.baseNodes {
		return o.g.Node(n)
	}
	return o.addedNodes[int(n)-o.baseNodes]
}

// NodeString renders n like Graph.NodeString, added nodes included.
func (o *Overlay) NodeString(n pag.NodeID) string {
	if int(n) < o.baseNodes {
		return o.g.NodeString(n)
	}
	nd := o.addedNodes[int(n)-o.baseNodes]
	if nd.Method != pag.NoMethod {
		return o.MethodInfo(nd.Method).Name + "." + nd.Name
	}
	return nd.Name
}

// IsNullObject reports whether n is a null object, added nodes included.
func (o *Overlay) IsNullObject(n pag.NodeID) bool {
	if int(n) < o.baseNodes {
		return o.g.IsNullObject(n)
	}
	nd := o.addedNodes[int(n)-o.baseNodes]
	nc := o.g.NullClassID()
	return nd.Kind == pag.Object && nc != pag.NoClass && nd.Class == nc
}

// clampSpan returns edges[i:j] capacity-clamped, nil when empty —
// matching the base accessors' read-only span contract.
func clampSpan(edges []pag.Edge, i, j int32) []pag.Edge {
	if i == j {
		return nil
	}
	return edges[i:j:j]
}

// --- base view ---

// The base accessors guard added-node IDs explicitly: an added node is
// patched by the epoch that introduces it, but mid-Apply (dedup, drop
// computation) and for edge-less additions the patch entry may not exist
// yet, and the base graph's arrays do not cover the ID.

func (o *Overlay) baseLocalOut(n pag.NodeID) []pag.Edge {
	if p := o.patchBase[n]; p >= 0 {
		a := &o.baseAdj[p]
		return clampSpan(a.out, 0, a.outSplit)
	}
	if int(n) >= o.baseNodes {
		return nil
	}
	return o.g.LocalOut(n)
}

func (o *Overlay) baseGlobalOut(n pag.NodeID) []pag.Edge {
	if p := o.patchBase[n]; p >= 0 {
		a := &o.baseAdj[p]
		return clampSpan(a.out, a.outSplit, int32(len(a.out)))
	}
	if int(n) >= o.baseNodes {
		return nil
	}
	return o.g.GlobalOut(n)
}

func (o *Overlay) baseLocalIn(n pag.NodeID) []pag.Edge {
	if p := o.patchBase[n]; p >= 0 {
		a := &o.baseAdj[p]
		return clampSpan(a.in, 0, a.inSplit)
	}
	if int(n) >= o.baseNodes {
		return nil
	}
	return o.g.LocalIn(n)
}

func (o *Overlay) baseGlobalIn(n pag.NodeID) []pag.Edge {
	if p := o.patchBase[n]; p >= 0 {
		a := &o.baseAdj[p]
		return clampSpan(a.in, a.inSplit, int32(len(a.in)))
	}
	if int(n) >= o.baseNodes {
		return nil
	}
	return o.g.GlobalIn(n)
}

// --- public view accessors; condensed selects the repaired condensation ---

// LocalOut returns n's outgoing local edges under the requested view.
func (o *Overlay) LocalOut(n pag.NodeID, condensed bool) []pag.Edge {
	if condensed && !o.trivial {
		if p := o.patchCond[n]; p >= 0 {
			a := &o.condAdj[p]
			return clampSpan(a.out, 0, a.outSplit)
		}
		return o.cond.LocalOut(n)
	}
	return o.baseLocalOut(n)
}

// GlobalOut returns n's outgoing global edges under the requested view.
func (o *Overlay) GlobalOut(n pag.NodeID, condensed bool) []pag.Edge {
	if condensed && !o.trivial {
		if p := o.patchCond[n]; p >= 0 {
			a := &o.condAdj[p]
			return clampSpan(a.out, a.outSplit, int32(len(a.out)))
		}
		return o.cond.GlobalOut(n)
	}
	return o.baseGlobalOut(n)
}

// LocalIn returns n's incoming local edges under the requested view.
func (o *Overlay) LocalIn(n pag.NodeID, condensed bool) []pag.Edge {
	if condensed && !o.trivial {
		if p := o.patchCond[n]; p >= 0 {
			a := &o.condAdj[p]
			return clampSpan(a.in, 0, a.inSplit)
		}
		return o.cond.LocalIn(n)
	}
	return o.baseLocalIn(n)
}

// GlobalIn returns n's incoming global edges under the requested view.
func (o *Overlay) GlobalIn(n pag.NodeID, condensed bool) []pag.Edge {
	if condensed && !o.trivial {
		if p := o.patchCond[n]; p >= 0 {
			a := &o.condAdj[p]
			return clampSpan(a.in, a.inSplit, int32(len(a.in)))
		}
		return o.cond.GlobalIn(n)
	}
	return o.baseGlobalIn(n)
}

// HasGlobalIn reports the PPTA S1 frontier condition under the view.
// Patched entries derive flags from span emptiness, which is exact for
// the current edge set (drops included).
func (o *Overlay) HasGlobalIn(n pag.NodeID, condensed bool) bool {
	if condensed && !o.trivial {
		if p := o.patchCond[n]; p >= 0 {
			a := &o.condAdj[p]
			return int(a.inSplit) < len(a.in)
		}
		return o.cond.HasGlobalIn(n)
	}
	if p := o.patchBase[n]; p >= 0 {
		a := &o.baseAdj[p]
		return int(a.inSplit) < len(a.in)
	}
	return int(n) < o.baseNodes && o.g.HasGlobalIn(n)
}

// HasGlobalOut reports the PPTA S2 frontier condition under the view.
func (o *Overlay) HasGlobalOut(n pag.NodeID, condensed bool) bool {
	if condensed && !o.trivial {
		if p := o.patchCond[n]; p >= 0 {
			a := &o.condAdj[p]
			return int(a.outSplit) < len(a.out)
		}
		return o.cond.HasGlobalOut(n)
	}
	if p := o.patchBase[n]; p >= 0 {
		a := &o.baseAdj[p]
		return int(a.outSplit) < len(a.out)
	}
	return int(n) < o.baseNodes && o.g.HasGlobalOut(n)
}

// HasLocalEdges reports whether n touches any local edge under the view.
func (o *Overlay) HasLocalEdges(n pag.NodeID, condensed bool) bool {
	if condensed && !o.trivial {
		if p := o.patchCond[n]; p >= 0 {
			a := &o.condAdj[p]
			return a.outSplit > 0 || a.inSplit > 0
		}
		return o.cond.HasLocalEdges(n)
	}
	if p := o.patchBase[n]; p >= 0 {
		a := &o.baseAdj[p]
		return a.outSplit > 0 || a.inSplit > 0
	}
	return int(n) < o.baseNodes && o.g.HasLocalEdges(n)
}

// Rep maps n to its representative under the repaired condensation
// (identity for dissolved members and added nodes).
func (o *Overlay) Rep(n pag.NodeID) pag.NodeID {
	if o.rep != nil {
		return o.rep[n]
	}
	if o.trivial || int(n) >= o.baseNodes {
		return n
	}
	return o.cond.Rep(n)
}

// nodeMethod returns the enclosing method of n (NoMethod for globals).
func (o *Overlay) nodeMethod(n pag.NodeID) pag.MethodID { return o.Node(n).Method }

// ownerMethod attributes an edge to the method whose body contains the
// statement: local edges to their (common) endpoint method, entry edges
// to the caller (the actual's method), exit edges to the caller (the
// lhs's method), assignglobal edges to the non-global side. Edges between
// two globals belong to no method and are never dropped by redefinition.
func (o *Overlay) ownerMethod(e pag.Edge) pag.MethodID {
	switch e.Kind {
	case pag.Entry:
		return o.nodeMethod(e.Src)
	case pag.Exit:
		return o.nodeMethod(e.Dst)
	case pag.AssignGlobal:
		if m := o.nodeMethod(e.Src); m != pag.NoMethod {
			return m
		}
		return o.nodeMethod(e.Dst)
	default: // new/assign/load/store: both endpoints share the method
		return o.nodeMethod(e.Src)
	}
}

// hasEdgeBase reports whether e exists in the current base view.
func (o *Overlay) hasEdgeBase(e pag.Edge) bool {
	sp := o.baseGlobalOut(e.Src)
	if e.Kind.IsLocal() {
		sp = o.baseLocalOut(e.Src)
	}
	for _, have := range sp {
		if have == e {
			return true
		}
	}
	return false
}

// ensureIndexes lazily builds the O(n) structures the first Apply needs:
// the method→nodes index, the surviving-SCC group table and repaired rep
// array (nontrivial condensations only), and the reverse-dependency
// sketch.
func (o *Overlay) ensureIndexes() {
	if o.methodNodes == nil {
		o.methodNodes = make([][]pag.NodeID, o.NumMethods())
		for n := 0; n < o.baseNodes; n++ {
			if m := o.g.Node(pag.NodeID(n)).Method; m != pag.NoMethod {
				o.methodNodes[m] = append(o.methodNodes[m], pag.NodeID(n))
			}
		}
	}
	if !o.trivial && o.rep == nil {
		o.rep = make([]pag.NodeID, o.baseNodes)
		o.groups = make(map[pag.NodeID][]pag.NodeID)
		for n := 0; n < o.baseNodes; n++ {
			r := o.cond.Rep(pag.NodeID(n))
			o.rep[n] = r
			if r != pag.NodeID(n) {
				o.groups[r] = append(o.groups[r], pag.NodeID(n))
			}
		}
		for r, members := range o.groups {
			members = append(members, r)
			slices.Sort(members)
			o.groups[r] = members
		}
	}
	if o.methodNbrs == nil {
		o.methodNbrs = make(map[pag.MethodID]map[pag.MethodID]bool)
		for n := 0; n < o.baseNodes; n++ {
			ms := o.g.Node(pag.NodeID(n)).Method
			if ms == pag.NoMethod {
				continue
			}
			for _, e := range o.g.GlobalOut(pag.NodeID(n)) {
				if md := o.g.Node(e.Dst).Method; md != pag.NoMethod && md != ms {
					o.linkMethods(ms, md)
				}
			}
		}
	}
}

func (o *Overlay) linkMethods(a, b pag.MethodID) {
	if o.methodNbrs[a] == nil {
		o.methodNbrs[a] = make(map[pag.MethodID]bool, 4)
	}
	if o.methodNbrs[b] == nil {
		o.methodNbrs[b] = make(map[pag.MethodID]bool, 4)
	}
	o.methodNbrs[a][b] = true
	o.methodNbrs[b][a] = true
}

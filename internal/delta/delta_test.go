package delta

import (
	"errors"
	"slices"
	"testing"

	"dynsum/internal/pag"
)

// base builds a small frozen program:
//
//	method A: oa --new--> a, assign cycle a->b->c->a, store a.f = c
//	method B: formal p, ret r, assign p->r
//	call site in A targeting B: entry a->p, exit r->lhs
//	global G with an assignglobal from A's c
//
// so there is a nontrivial SCC in A, cross-method global edges, and a
// field edge — everything Apply has to reason about.
type baseFixture struct {
	g                *pag.Graph
	clsC             pag.ClassID
	f                pag.FieldID
	mA, mB           pag.MethodID
	oa, a, b, c, lhs pag.NodeID
	p, r             pag.NodeID
	glob             pag.NodeID
	cs               pag.CallSiteID
}

func buildBase(t *testing.T) *baseFixture {
	t.Helper()
	bd := pag.NewBuilder()
	fx := &baseFixture{}
	fx.clsC = bd.Class("C", pag.NoClass)
	fx.f = bd.G.AddField("C.f")
	fx.mA = bd.Method("A", fx.clsC)
	fx.mB = bd.Method("B", fx.clsC)
	fx.a = bd.Local(fx.mA, "a", fx.clsC)
	fx.b = bd.Local(fx.mA, "b", fx.clsC)
	fx.c = bd.Local(fx.mA, "c", fx.clsC)
	fx.lhs = bd.Local(fx.mA, "lhs", fx.clsC)
	fx.oa = bd.NewObject(fx.a, "oa", fx.clsC)
	bd.Copy(fx.b, fx.a)
	bd.Copy(fx.c, fx.b)
	bd.Copy(fx.a, fx.c) // cycle a->b->c->a
	bd.Store(fx.a, fx.f, fx.c)
	fx.p = bd.Local(fx.mB, "p", fx.clsC)
	fx.r = bd.Local(fx.mB, "r", fx.clsC)
	bd.Copy(fx.r, fx.p)
	fx.cs = bd.Call(fx.mA, fx.mB, "A:cs0", []pag.NodeID{fx.a}, []pag.NodeID{fx.p}, fx.r, fx.lhs)
	fx.glob = bd.GlobalVar("G.g", fx.clsC)
	bd.Copy(fx.glob, fx.c)
	g, err := bd.Finish()
	if err != nil {
		t.Fatal(err)
	}
	fx.g = g
	return fx
}

// edgeSet gathers a span into a sorted copy for order-insensitive
// comparison.
func edgeSet(es []pag.Edge) []pag.Edge {
	out := append([]pag.Edge{}, es...)
	return dedupEdges(out)
}

// checkBaseViewMatches compares the overlay's base view against a freshly
// built mutable reference graph node by node, all four spans.
func checkBaseViewMatches(t *testing.T, tag string, o *Overlay, ref *pag.Graph) {
	t.Helper()
	if o.NumNodes() != ref.NumNodes() {
		t.Fatalf("%s: overlay has %d nodes, reference %d", tag, o.NumNodes(), ref.NumNodes())
	}
	for n := 0; n < ref.NumNodes(); n++ {
		id := pag.NodeID(n)
		pairs := []struct {
			name     string
			ov, want []pag.Edge
		}{
			{"localOut", o.LocalOut(id, false), ref.LocalOut(id)},
			{"globalOut", o.GlobalOut(id, false), ref.GlobalOut(id)},
			{"localIn", o.LocalIn(id, false), ref.LocalIn(id)},
			{"globalIn", o.GlobalIn(id, false), ref.GlobalIn(id)},
		}
		for _, p := range pairs {
			got, want := edgeSet(p.ov), edgeSet(p.want)
			if !slices.Equal(got, want) {
				t.Errorf("%s: node %d %s = %v, want %v", tag, n, p.name, got, want)
			}
		}
	}
}

func TestApplyAddMethodMatchesRebuild(t *testing.T) {
	fx := buildBase(t)
	ov, err := NewOverlay(fx.g)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch: load method D calling B — a fresh allocation piped into B's
	// formal, the return captured. B receives a new inbound entry edge
	// (its formal already has one, so no flag flips) and a new outbound
	// exit edge target.
	l := ov.NewLog()
	mD := l.AddMethod("D", fx.clsC)
	d1 := l.AddNode(pag.Local, mD, fx.clsC, "d1")
	od := l.AddNode(pag.Object, mD, fx.clsC, "od")
	dl := l.AddNode(pag.Local, mD, fx.clsC, "dl")
	cs := l.AddCallSite(pag.CallSite{Caller: mD, Name: "D:cs0", Targets: []pag.MethodID{fx.mB}})
	l.AddEdge(pag.Edge{Src: od, Dst: d1, Kind: pag.New, Label: pag.NoLabel})
	l.AddEdge(pag.Edge{Src: d1, Dst: fx.p, Kind: pag.Entry, Label: int32(cs)})
	l.AddEdge(pag.Edge{Src: fx.r, Dst: dl, Kind: pag.Exit, Label: int32(cs)})
	st, err := ov.Apply(l)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewMethods != 1 || st.NewNodes != 3 || st.NewEdges != 3 {
		t.Errorf("ApplyStats = %+v, want 1 method / 3 nodes / 3 edges", st)
	}
	// B's formal and return already touched global edges: nothing flips,
	// no summaries to invalidate.
	if st.FlagFlips != 0 || len(st.TouchedMethods) != 0 {
		t.Errorf("expected no flag flips / touched methods, got %+v", st)
	}
	if st.DissolvedSCCs != 0 {
		t.Errorf("a purely global epoch dissolved %d SCCs", st.DissolvedSCCs)
	}

	// Reference: the same program built mutable from scratch.
	ref := rebuildWith(t, fx, func(bd *pag.Builder) {
		mD := bd.Method("D", fx.clsC)
		d1 := bd.Local(mD, "d1", fx.clsC)
		bd.Object(mD, "od", fx.clsC)
		dl := bd.Local(mD, "dl", fx.clsC)
		cs := bd.G.AddCallSite(mD, "D:cs0")
		bd.G.AddCallTarget(cs, fx.mB)
		bd.G.AddEdge(pag.Edge{Src: d1 + 1, Dst: d1, Kind: pag.New, Label: pag.NoLabel}) // od is d1+1
		bd.G.AddEdge(pag.Edge{Src: d1, Dst: fx.p, Kind: pag.Entry, Label: int32(cs)})
		bd.G.AddEdge(pag.Edge{Src: fx.r, Dst: dl, Kind: pag.Exit, Label: int32(cs)})
	})
	checkBaseViewMatches(t, "add-method", ov, ref)

	// The overlay's metadata resolves the new IDs.
	if got := ov.NodeString(d1); got != "D.d1" {
		t.Errorf("NodeString(d1) = %q", got)
	}
	if ov.Node(od).Kind != pag.Object {
		t.Errorf("added object lost its kind")
	}
}

// rebuildWith replays the base fixture's construction plus extra into a
// fresh mutable graph with identical IDs.
func rebuildWith(t *testing.T, fx *baseFixture, extra func(*pag.Builder)) *pag.Graph {
	t.Helper()
	bd := pag.NewBuilder()
	cls := bd.Class("C", pag.NoClass)
	f := bd.G.AddField("C.f")
	mA := bd.Method("A", cls)
	mB := bd.Method("B", cls)
	a := bd.Local(mA, "a", cls)
	b := bd.Local(mA, "b", cls)
	c := bd.Local(mA, "c", cls)
	lhs := bd.Local(mA, "lhs", cls)
	bd.NewObject(a, "oa", cls)
	bd.Copy(b, a)
	bd.Copy(c, b)
	bd.Copy(a, c)
	bd.Store(a, f, c)
	p := bd.Local(mB, "p", cls)
	r := bd.Local(mB, "r", cls)
	bd.Copy(r, p)
	bd.Call(mA, mB, "A:cs0", []pag.NodeID{a}, []pag.NodeID{p}, r, lhs)
	g := bd.GlobalVar("G.g", cls)
	bd.Copy(g, c)
	if extra != nil {
		extra(bd)
	}
	if err := bd.G.Validate(); err != nil {
		t.Fatal(err)
	}
	return bd.G
}

func TestRedefineDropsOwnedEdges(t *testing.T) {
	fx := buildBase(t)
	ov, err := NewOverlay(fx.g)
	if err != nil {
		t.Fatal(err)
	}

	// Recompile A: the new body allocates into a fresh temp and returns
	// it through the same lhs; the old cycle, store, call edges and the
	// assignglobal all vanish.
	l := ov.NewLog()
	l.RedefineMethod(fx.mA)
	t2 := l.AddNode(pag.Local, fx.mA, fx.clsC, "t2")
	o2 := l.AddNode(pag.Object, fx.mA, fx.clsC, "o2")
	l.AddEdge(pag.Edge{Src: o2, Dst: t2, Kind: pag.New, Label: pag.NoLabel})
	l.AddEdge(pag.Edge{Src: t2, Dst: fx.lhs, Kind: pag.Assign, Label: pag.NoLabel})
	st, err := ov.Apply(l)
	if err != nil {
		t.Fatal(err)
	}
	if st.RedefinedMethods != 1 {
		t.Errorf("RedefinedMethods = %d", st.RedefinedMethods)
	}
	// Everything A owned is gone: new, 3 cycle assigns, store, entry,
	// exit, assignglobal = 8 edges.
	if st.DroppedEdges != 8 {
		t.Errorf("DroppedEdges = %d, want 8", st.DroppedEdges)
	}
	if !slices.Contains(st.TouchedMethods, fx.mA) {
		t.Errorf("redefined method not in TouchedMethods %v", st.TouchedMethods)
	}
	if slices.Contains(st.TouchedMethods, fx.mB) {
		t.Errorf("untouched method B invalidated: %v", st.TouchedMethods)
	}
	if st.DissolvedSCCs != 1 {
		t.Errorf("DissolvedSCCs = %d, want 1 (the a->b->c cycle)", st.DissolvedSCCs)
	}

	ref := rebuildWithRedefinedA(t, fx)
	checkBaseViewMatches(t, "redefine", ov, ref)

	// B's formal lost its only inbound entry edge; span-derived flags see
	// that exactly.
	if ov.HasGlobalIn(fx.p, false) {
		t.Errorf("p still reports an inbound global edge after the caller was redefined")
	}
}

// rebuildWithRedefinedA builds the post-redefinition program from scratch
// (same IDs: redefinition keeps all old nodes, adds t2/o2).
func rebuildWithRedefinedA(t *testing.T, fx *baseFixture) *pag.Graph {
	t.Helper()
	bd := pag.NewBuilder()
	cls := bd.Class("C", pag.NoClass)
	bd.G.AddField("C.f")
	mA := bd.Method("A", cls)
	mB := bd.Method("B", cls)
	bd.Local(mA, "a", cls)
	bd.Local(mA, "b", cls)
	bd.Local(mA, "c", cls)
	lhs := bd.Local(mA, "lhs", cls)
	bd.Object(mA, "oa", cls)
	p := bd.Local(mB, "p", cls)
	r := bd.Local(mB, "r", cls)
	bd.Copy(r, p)
	bd.G.AddCallSite(mA, "A:cs0") // metadata survives; its edges do not
	bd.GlobalVar("G.g", cls)
	t2 := bd.Local(mA, "t2", cls)
	o2 := bd.Object(mA, "o2", cls)
	bd.Alloc(t2, o2)
	bd.Copy(lhs, t2)
	if err := bd.G.Validate(); err != nil {
		t.Fatal(err)
	}
	return bd.G
}

func TestCondensedViewRepair(t *testing.T) {
	fx := buildBase(t)
	ov, err := NewOverlay(fx.g)
	if err != nil {
		t.Fatal(err)
	}
	cond := fx.g.Condensation()
	if cond.Trivial() {
		t.Fatal("fixture lost its assign SCC")
	}
	rep := cond.Rep(fx.a)
	if cond.Rep(fx.b) != rep || cond.Rep(fx.c) != rep {
		t.Fatal("a, b, c not collapsed")
	}

	// An epoch adding a local edge in A dissolves A's SCC; B keeps its
	// (trivial) representatives and the base condensation keeps serving
	// untouched nodes.
	l := ov.NewLog()
	t3 := l.AddNode(pag.Local, fx.mA, fx.clsC, "t3")
	l.AddEdge(pag.Edge{Src: fx.b, Dst: t3, Kind: pag.Assign, Label: pag.NoLabel})
	st, err := ov.Apply(l)
	if err != nil {
		t.Fatal(err)
	}
	if st.DissolvedSCCs != 1 {
		t.Fatalf("DissolvedSCCs = %d, want 1", st.DissolvedSCCs)
	}
	for _, n := range []pag.NodeID{fx.a, fx.b, fx.c, t3} {
		if got := ov.Rep(n); got != n {
			t.Errorf("Rep(%d) = %d after dissolution, want identity", n, got)
		}
	}
	if ov.Rep(fx.p) != cond.Rep(fx.p) {
		t.Errorf("untouched method's rep changed")
	}
	// Every condensed-view endpoint must be a current representative, and
	// the condensed view must now equal the base view on A's singleton
	// nodes (modulo rep-mapping, which is identity there).
	for n := 0; n < ov.NumNodes(); n++ {
		id := pag.NodeID(n)
		if ov.Rep(id) != id {
			continue
		}
		for _, e := range ov.LocalOut(id, true) {
			if ov.Rep(e.Src) != e.Src || ov.Rep(e.Dst) != e.Dst {
				t.Errorf("condensed edge %v has non-representative endpoint", e)
			}
			if e.Kind == pag.Assign && e.Src == e.Dst {
				t.Errorf("condensed self-loop %v survived", e)
			}
		}
		for _, e := range ov.GlobalOut(id, true) {
			if ov.Rep(e.Src) != e.Src || ov.Rep(e.Dst) != e.Dst {
				t.Errorf("condensed global edge %v has non-representative endpoint", e)
			}
		}
	}
	if st.TouchedMethods[0] != fx.mA || len(st.TouchedMethods) != 1 {
		t.Errorf("TouchedMethods = %v, want [A]", st.TouchedMethods)
	}
}

func TestStaleAndInvalidLogsRejected(t *testing.T) {
	fx := buildBase(t)
	ov, err := NewOverlay(fx.g)
	if err != nil {
		t.Fatal(err)
	}
	l1 := ov.NewLog()
	l1.AddMethod("D", fx.clsC)
	stale := ov.NewLog() // created before l1 lands, same position
	stale.AddMethod("E", fx.clsC)
	if _, err := ov.Apply(l1); err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Apply(stale); err == nil {
		t.Error("stale log accepted")
	}

	bad := ov.NewLog()
	bad.AddEdge(pag.Edge{Src: fx.a, Dst: fx.p, Kind: pag.Assign, Label: pag.NoLabel})
	if _, err := ov.Apply(bad); err == nil {
		t.Error("cross-method assign accepted")
	}
	bad2 := ov.NewLog()
	bad2.AddEdge(pag.Edge{Src: 9999, Dst: fx.a, Kind: pag.Assign, Label: pag.NoLabel})
	if _, err := ov.Apply(bad2); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	// A rejected log leaves the overlay untouched.
	if got := ov.Epoch(); got != 1 {
		t.Errorf("epoch = %d after rejected logs, want 1", got)
	}
}

func TestUnfrozenGraphRejected(t *testing.T) {
	bd := pag.NewBuilder()
	cls := bd.Class("C", pag.NoClass)
	m := bd.Method("M", cls)
	bd.Local(m, "x", cls)
	if _, err := NewOverlay(bd.G); err == nil {
		t.Fatal("overlay over a mutable graph accepted")
	}
}

func TestCompactRoundTrip(t *testing.T) {
	fx := buildBase(t)
	ov, err := NewOverlay(fx.g)
	if err != nil {
		t.Fatal(err)
	}
	l := ov.NewLog()
	mD := l.AddMethod("D", fx.clsC)
	d1 := l.AddNode(pag.Local, mD, fx.clsC, "d1")
	od := l.AddNode(pag.Object, mD, fx.clsC, "od")
	cs := l.AddCallSite(pag.CallSite{Caller: mD, Name: "D:cs0", Targets: []pag.MethodID{fx.mB}})
	l.AddEdge(pag.Edge{Src: od, Dst: d1, Kind: pag.New, Label: pag.NoLabel})
	l.AddEdge(pag.Edge{Src: d1, Dst: fx.p, Kind: pag.Entry, Label: int32(cs)})
	if _, err := ov.Apply(l); err != nil {
		t.Fatal(err)
	}

	ng, err := ov.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !ng.Frozen() {
		t.Fatal("compacted graph not frozen")
	}
	if ng.NumNodes() != ov.NumNodes() || ng.NumMethods() != ov.NumMethods() {
		t.Fatalf("compacted counts diverge: %d/%d nodes, %d/%d methods",
			ng.NumNodes(), ov.NumNodes(), ng.NumMethods(), ov.NumMethods())
	}
	// The base graph itself was never written.
	if fx.g.NumMethods() != 2 || fx.g.NumCallSites() != 1 {
		t.Fatalf("base graph metadata mutated: %d methods, %d call sites",
			fx.g.NumMethods(), fx.g.NumCallSites())
	}
	for n := 0; n < ng.NumNodes(); n++ {
		id := pag.NodeID(n)
		if got, want := edgeSet(ng.LocalOut(id)), edgeSet(ov.LocalOut(id, false)); !slices.Equal(got, want) {
			t.Errorf("compacted node %d localOut %v != overlay %v", n, got, want)
		}
		if got, want := edgeSet(ng.GlobalOut(id)), edgeSet(ov.GlobalOut(id, false)); !slices.Equal(got, want) {
			t.Errorf("compacted node %d globalOut %v != overlay %v", n, got, want)
		}
	}
	// Derived identifiers survive the copy.
	if fx.g.NullClassID() != pag.NoClass && ng.NullClassID() == pag.NoClass {
		t.Error("compacted graph lost the Null class")
	}
	if ng.Condensation() == nil {
		t.Error("compacted graph has no condensation")
	}
}

func TestFrozenPanicIsTyped(t *testing.T) {
	fx := buildBase(t)
	defer func() {
		r := recover()
		fe, ok := r.(*pag.FrozenError)
		if !ok {
			t.Fatalf("panic = %v (%T), want *pag.FrozenError", r, r)
		}
		if !errors.Is(fe, pag.ErrFrozen) {
			t.Fatal("panic does not wrap pag.ErrFrozen")
		}
	}()
	fx.g.AddEdge(pag.Edge{Src: fx.a, Dst: fx.b, Kind: pag.Assign, Label: pag.NoLabel})
}

func TestStatsAndFraction(t *testing.T) {
	fx := buildBase(t)
	ov, err := NewOverlay(fx.g)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Fraction() != 0 {
		t.Errorf("fresh overlay fraction = %v", ov.Fraction())
	}
	l := ov.NewLog()
	t3 := l.AddNode(pag.Local, fx.mA, fx.clsC, "t3")
	l.AddEdge(pag.Edge{Src: fx.b, Dst: t3, Kind: pag.Assign, Label: pag.NoLabel})
	if _, err := ov.Apply(l); err != nil {
		t.Fatal(err)
	}
	s := ov.Stats()
	if s.Epochs != 1 || s.AddedNodes != 1 || s.PatchedNodes == 0 || s.PatchedMethods != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.OverlayFraction() <= 0 || ov.Fraction() != s.OverlayFraction() {
		t.Errorf("fraction = %v / %v", ov.Fraction(), s.OverlayFraction())
	}
}

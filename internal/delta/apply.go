package delta

import (
	"cmp"
	"slices"

	"dynsum/internal/pag"
)

// This file implements Overlay.Apply — one epoch — plus the statistics and
// the Compact merge.
//
// Apply's cost is O(changed elements + repair blast radius): the nodes of
// redefined methods, the endpoints of added/dropped edges, and — for the
// condensed view — the representatives global-edge-adjacent to dissolved
// SCC members. It never walks the whole graph (the lazy one-time index
// builds in ensureIndexes are the only O(n) work, paid on the first epoch
// and reused by all later ones).

// ApplyStats reports what one epoch did. TouchedMethods is the engine's
// invalidation work list: exactly the pre-existing methods whose cached
// PPTA summaries may have changed (local-edge changes and global-flag
// flips; see the soundness argument in overlay.go / DESIGN.md §10).
type ApplyStats struct {
	Epoch int

	NewMethods       int
	NewCallSites     int
	NewNodes         int
	NewEdges         int // effective (post-dedup) added edges
	DroppedEdges     int
	RedefinedMethods int

	// TouchedMethods lists the pre-existing methods whose summaries must
	// be invalidated, sorted. DependentMethods counts the methods the
	// reverse-dependency sketch marks as global-edge-adjacent to the
	// touched set — the bound a conservative cascading invalidator would
	// use; the summaries' method-locality lets the engine skip them.
	TouchedMethods   []pag.MethodID
	DependentMethods int

	// FlagFlips counts existing nodes whose global-edge frontier flag went
	// from unset to set this epoch (each forces its method onto
	// TouchedMethods).
	FlagFlips int

	// DissolvedSCCs / RebuiltReps describe the local condensation repair.
	DissolvedSCCs int
	RebuiltReps   int

	// OverlayFraction is the overlay's size after this epoch as a fraction
	// of the base graph's edge records — the auto-compaction signal.
	OverlayFraction float64
}

// Stats is the overlay's cumulative state, for pagstat and the harness.
type Stats struct {
	Epochs         int
	PatchedNodes   int // nodes carrying base-view overlay adjacency
	PatchedMethods int // distinct methods containing patched nodes
	AddedMethods   int
	AddedNodes     int
	AddedCallSites int
	OverlayEdges   int // out-direction edge records held by the overlay
	BaseEdges      int // out-direction edge records in the base CSR
	DroppedEdges   int // cumulative
	DissolvedSCCs  int // cumulative
	RebuiltReps    int // cumulative
}

// OverlayFraction returns OverlayEdges/BaseEdges (0 on an empty base).
func (s Stats) OverlayFraction() float64 {
	if s.BaseEdges == 0 {
		return 0
	}
	return float64(s.OverlayEdges) / float64(s.BaseEdges)
}

// Stats returns the overlay's cumulative statistics.
func (o *Overlay) Stats() Stats {
	patched := 0
	for _, p := range o.patchBase {
		if p >= 0 {
			patched++
		}
	}
	return Stats{
		Epochs:         o.epoch,
		PatchedNodes:   patched,
		PatchedMethods: len(o.patchedMethods),
		AddedMethods:   len(o.addedMethods),
		AddedNodes:     len(o.addedNodes),
		AddedCallSites: len(o.addedCallSites),
		OverlayEdges:   o.overlayEdges,
		BaseEdges:      o.g.NumEdges(),
		DroppedEdges:   o.droppedEdges,
		DissolvedSCCs:  o.dissolvedSCCs,
		RebuiltReps:    o.rebuiltReps,
	}
}

// Fraction returns the current overlay fraction (the Compact trigger).
func (o *Overlay) Fraction() float64 {
	if base := o.g.NumEdges(); base > 0 {
		return float64(o.overlayEdges) / float64(base)
	}
	return 0
}

// Apply advances the overlay by one epoch with the changes recorded in l.
// It validates the whole log first — a rejected log leaves the overlay
// untouched — then patches the base view, repairs the condensed view
// locally, and returns the invalidation work list. The log is consumed.
//
// Apply is a mutator: quiesce all engines reading the overlay first, as
// for ResetCache and the other engine mutators.
func (o *Overlay) Apply(l *Log) (ApplyStats, error) {
	o.ensureIndexes()
	if err := l.validate(o); err != nil {
		return ApplyStats{}, err
	}
	preMethods := l.baseMethods
	preNodes := l.baseNodes

	// 1. Metadata: methods, call sites and node records join the
	// overlay's side tables; the base graph is never written.
	for _, m := range l.methods {
		o.addedMethods = append(o.addedMethods, m)
		o.methodNodes = append(o.methodNodes, nil)
	}
	o.addedCallSites = append(o.addedCallSites, l.callSites...)
	for i, nd := range l.nodes {
		id := pag.NodeID(preNodes + i)
		o.addedNodes = append(o.addedNodes, nd)
		o.patchBase = append(o.patchBase, -1)
		o.patchCond = append(o.patchCond, -1)
		if o.rep != nil {
			o.rep = append(o.rep, id)
		}
		if nd.Method != pag.NoMethod {
			o.methodNodes[nd.Method] = append(o.methodNodes[nd.Method], id)
		}
	}

	// 2. Dropped edges: everything owned by a redefined method.
	dropped := make(map[pag.Edge]bool)
	for _, m := range l.redefined {
		for _, n := range o.methodNodes[m] {
			for _, e := range o.baseLocalOut(n) {
				if o.ownerMethod(e) == m {
					dropped[e] = true
				}
			}
			for _, e := range o.baseGlobalOut(n) {
				if o.ownerMethod(e) == m {
					dropped[e] = true
				}
			}
			for _, e := range o.baseLocalIn(n) {
				if o.ownerMethod(e) == m {
					dropped[e] = true
				}
			}
			for _, e := range o.baseGlobalIn(n) {
				if o.ownerMethod(e) == m {
					dropped[e] = true
				}
			}
		}
	}

	// 3. Effective added edges: dedup within the log and against edges
	// that are present and surviving. A log edge identical to a dropped
	// one is a genuine re-add.
	var added []pag.Edge
	logSeen := make(map[pag.Edge]bool, len(l.edges))
	for _, e := range l.edges {
		if logSeen[e] {
			continue
		}
		logSeen[e] = true
		if !dropped[e] && o.hasEdgeBase(e) {
			continue
		}
		if dropped[e] {
			delete(dropped, e) // re-added by the new body: net no-op
			continue
		}
		added = append(added, e)
	}

	// 4. Invalidation: compute against the PRE-epoch state, before any
	// adjacency is rebuilt, so flag flips are detected exactly.
	touched := make(map[pag.MethodID]bool)
	for _, m := range l.redefined {
		touched[m] = true
	}
	flipped := make(map[pag.NodeID]bool)
	markTouched := func(m pag.MethodID) {
		if m != pag.NoMethod && int(m) < preMethods {
			touched[m] = true
		}
	}
	for _, e := range added {
		if e.Kind.IsLocal() {
			markTouched(o.nodeMethod(e.Src))
			continue
		}
		// The flag checks read the pre-rebuild state, so several edges
		// into one node all see the flip; flipped dedups the count per
		// node (markTouched is idempotent anyway).
		if int(e.Src) < preNodes && !o.HasGlobalOut(e.Src, false) {
			flipped[e.Src] = true
			markTouched(o.nodeMethod(e.Src))
		}
		if int(e.Dst) < preNodes && !o.HasGlobalIn(e.Dst, false) {
			flipped[e.Dst] = true
			markTouched(o.nodeMethod(e.Dst))
		}
		if o.methodNbrs != nil {
			ms, md := o.nodeMethod(e.Src), o.nodeMethod(e.Dst)
			if ms != pag.NoMethod && md != pag.NoMethod && ms != md {
				o.linkMethods(ms, md)
			}
		}
	}

	// 5. Condensation repair, part 1: methods whose local edges changed
	// lose their SCC collapse — a changed body voids the freeze-time
	// cycle proof, so their nodes fall back to singleton representatives.
	dissolvedThisEpoch := 0
	var dissolved []pag.NodeID
	localMethods := make(map[pag.MethodID]bool)
	for _, m := range l.redefined {
		localMethods[m] = true
	}
	for _, e := range added {
		if e.Kind.IsLocal() {
			if m := o.nodeMethod(e.Src); m != pag.NoMethod {
				localMethods[m] = true
			}
		}
	}
	if !o.trivial {
		for _, m := range sortedMethods(localMethods) {
			if int(m) >= len(o.methodNodes) {
				continue
			}
			for _, n := range o.methodNodes[m] {
				r := o.rep[n]
				members, ok := o.groups[r]
				if !ok {
					continue
				}
				for _, mb := range members {
					o.rep[mb] = mb
				}
				dissolved = append(dissolved, members...)
				delete(o.groups, r)
				dissolvedThisEpoch++
			}
		}
		o.dissolvedSCCs += dissolvedThisEpoch
	}

	// 6. Base-view patch set and rebuild: endpoints of every changed edge
	// plus every added node (their adjacency exists only here).
	patch := make(map[pag.NodeID]bool)
	for e := range dropped {
		patch[e.Src] = true
		patch[e.Dst] = true
	}
	addedOut := make(map[pag.NodeID][]pag.Edge)
	addedIn := make(map[pag.NodeID][]pag.Edge)
	for _, e := range added {
		patch[e.Src] = true
		patch[e.Dst] = true
		addedOut[e.Src] = append(addedOut[e.Src], e)
		addedIn[e.Dst] = append(addedIn[e.Dst], e)
	}
	for i := range l.nodes {
		patch[pag.NodeID(preNodes+i)] = true
	}
	for _, n := range sortedNodes(patch) {
		o.rebuildBase(n, dropped, addedOut[n], addedIn[n])
	}

	// 7. Condensation repair, part 2: rebuild the condensed spans whose
	// contents this epoch invalidated — the repaired representatives of
	// every patched node and every node of a local-change method, plus
	// the representatives global-edge-adjacent to dissolved members
	// (their freeze-time spans name the old representatives).
	rebuilt := 0
	if !o.trivial {
		condSet := make(map[pag.NodeID]bool)
		for n := range patch {
			condSet[o.rep[n]] = true
		}
		for m := range localMethods {
			if m == pag.NoMethod || int(m) >= len(o.methodNodes) {
				continue
			}
			for _, n := range o.methodNodes[m] {
				condSet[o.rep[n]] = true
			}
		}
		for _, d := range dissolved {
			for _, e := range o.baseGlobalOut(d) {
				condSet[o.rep[e.Dst]] = true
			}
			for _, e := range o.baseGlobalIn(d) {
				condSet[o.rep[e.Src]] = true
			}
			// Local neighbours live in the same (dissolved) method and are
			// already in condSet via the localMethods loop.
		}
		for _, r := range sortedNodes(condSet) {
			o.rebuildCond(r)
		}
		rebuilt = len(condSet)
		o.rebuiltReps += rebuilt
	}

	// 8. Bookkeeping and the epoch's report.
	o.droppedEdges += len(dropped)
	for n := range patch {
		if m := o.nodeMethod(n); m != pag.NoMethod {
			o.patchedMethods[m] = true
		}
	}
	o.epoch++

	st := ApplyStats{
		Epoch:            o.epoch,
		NewMethods:       len(l.methods),
		NewCallSites:     len(l.callSites),
		NewNodes:         len(l.nodes),
		NewEdges:         len(added),
		DroppedEdges:     len(dropped),
		RedefinedMethods: len(l.redefined),
		TouchedMethods:   sortedMethods(touched),
		FlagFlips:        len(flipped),
		DissolvedSCCs:    dissolvedThisEpoch,
		RebuiltReps:      rebuilt,
		OverlayFraction:  o.Fraction(),
	}
	// The sketch bound: methods adjacent (over global edges) to the
	// touched set that a cascading invalidator would also have dropped.
	deps := make(map[pag.MethodID]bool)
	for _, m := range st.TouchedMethods {
		for nb := range o.methodNbrs[m] {
			if !touched[nb] {
				deps[nb] = true
			}
		}
	}
	st.DependentMethods = len(deps)
	return st, nil
}

// rebuildBase installs n's base-view replacement adjacency: current edges
// minus dropped plus the epoch's additions, partition preserved. Order is
// deterministic: surviving edges keep their relative order, added edges
// append in log order within their partition half.
func (o *Overlay) rebuildBase(n pag.NodeID, dropped map[pag.Edge]bool, addOut, addIn []pag.Edge) {
	build := func(localCur, globalCur, adds []pag.Edge) (edges []pag.Edge, split int32) {
		for _, e := range localCur {
			if !dropped[e] {
				edges = append(edges, e)
			}
		}
		for _, e := range adds {
			if e.Kind.IsLocal() {
				edges = append(edges, e)
			}
		}
		split = int32(len(edges))
		for _, e := range globalCur {
			if !dropped[e] {
				edges = append(edges, e)
			}
		}
		for _, e := range adds {
			if e.Kind.IsGlobal() {
				edges = append(edges, e)
			}
		}
		return edges, split
	}
	var a patchAdj
	a.out, a.outSplit = build(o.baseLocalOut(n), o.baseGlobalOut(n), addOut)
	a.in, a.inSplit = build(o.baseLocalIn(n), o.baseGlobalIn(n), addIn)

	if p := o.patchBase[n]; p >= 0 {
		o.overlayEdges += len(a.out) - len(o.baseAdj[p].out)
		o.baseAdj[p] = a
		return
	}
	o.patchBase[n] = int32(len(o.baseAdj))
	o.baseAdj = append(o.baseAdj, a)
	o.overlayEdges += len(a.out)
}

// rebuildCond installs representative r's condensed-view adjacency: the
// union of its surviving members' current base-view edges with endpoints
// mapped through the repaired rep function, intra-SCC assign self-loops
// removed and duplicates merged — exactly the freeze-time gather, run on
// one representative.
func (o *Overlay) rebuildCond(r pag.NodeID) {
	members := o.groups[r]
	if members == nil {
		members = []pag.NodeID{r}
	}
	mapEdge := func(e pag.Edge) pag.Edge {
		return pag.Edge{Src: o.rep[e.Src], Dst: o.rep[e.Dst], Kind: e.Kind, Label: e.Label}
	}
	gather := func(in bool) (edges []pag.Edge, split int32) {
		var locals, globals []pag.Edge
		for _, mb := range members {
			var loc, glob []pag.Edge
			if in {
				loc, glob = o.baseLocalIn(mb), o.baseGlobalIn(mb)
			} else {
				loc, glob = o.baseLocalOut(mb), o.baseGlobalOut(mb)
			}
			for _, e := range loc {
				me := mapEdge(e)
				if me.Kind == pag.Assign && me.Src == me.Dst {
					continue // collapsed cycle edge: a state-level no-op
				}
				locals = append(locals, me)
			}
			for _, e := range glob {
				globals = append(globals, mapEdge(e))
			}
		}
		locals = dedupEdges(locals)
		globals = dedupEdges(globals)
		edges = append(locals, globals...)
		return edges, int32(len(locals))
	}
	var a patchAdj
	a.out, a.outSplit = gather(false)
	a.in, a.inSplit = gather(true)

	if p := o.patchCond[r]; p >= 0 {
		o.condAdj[p] = a
		return
	}
	o.patchCond[r] = int32(len(o.condAdj))
	o.condAdj = append(o.condAdj, a)
}

// Compact merges the overlay into a fresh, fully re-frozen (and
// re-condensed) Graph carrying identical node/method/call-site IDs, so
// cached query variables and result sets remain meaningful. The overlay
// itself is left untouched; callers (the engine's auto-compaction) swap
// the graph in and drop the overlay — and must also drop the summary
// cache, because the fresh condensation may choose different
// representatives.
func (o *Overlay) Compact() (*pag.Graph, error) {
	g := o.g
	ng := pag.NewGraph()
	for c := 0; c < g.NumClasses(); c++ {
		ci := g.ClassInfo(pag.ClassID(c))
		ng.AddClass(ci.Name, ci.Parent)
	}
	for f := 0; f < g.NumFields(); f++ {
		ng.AddField(g.FieldName(pag.FieldID(f)))
	}
	for m := 0; m < o.NumMethods(); m++ {
		mi := o.MethodInfo(pag.MethodID(m))
		ng.AddMethod(mi.Name, mi.Class)
	}
	for cs := 0; cs < o.NumCallSites(); cs++ {
		info := o.CallSiteInfo(pag.CallSiteID(cs))
		id := ng.AddCallSite(info.Caller, info.Name)
		for _, t := range info.Targets {
			ng.AddCallTarget(id, t)
		}
	}
	total := o.NumNodes()
	for n := 0; n < total; n++ {
		nd := o.Node(pag.NodeID(n))
		ng.AddNode(nd.Kind, nd.Method, nd.Class, nd.Name)
	}
	for n := 0; n < total; n++ {
		for _, e := range o.baseLocalOut(pag.NodeID(n)) {
			ng.AddEdge(e)
		}
		for _, e := range o.baseGlobalOut(pag.NodeID(n)) {
			ng.AddEdge(e)
		}
	}
	ng.ResolveDerived()
	if err := ng.Validate(); err != nil {
		return nil, err
	}
	ng.Freeze()
	return ng, nil
}

// dedupEdges sorts es by (Src, Dst, Kind, Label) and removes duplicates in
// place (the freeze-time condensation's helper, local to this package).
func dedupEdges(es []pag.Edge) []pag.Edge {
	if len(es) < 2 {
		return es
	}
	slices.SortFunc(es, func(a, b pag.Edge) int {
		if c := cmp.Compare(a.Src, b.Src); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Dst, b.Dst); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		return cmp.Compare(a.Label, b.Label)
	})
	return slices.Compact(es)
}

func sortedNodes(set map[pag.NodeID]bool) []pag.NodeID {
	out := make([]pag.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

func sortedMethods(set map[pag.MethodID]bool) []pag.MethodID {
	out := make([]pag.MethodID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	slices.Sort(out)
	return out
}

package delta

import (
	"cmp"
	"slices"

	"dynsum/internal/faultinject"
	"dynsum/internal/pag"
)

// This file implements Overlay.Apply — one epoch — plus the statistics and
// the Compact merge.
//
// Apply's cost is O(changed elements + repair blast radius): the nodes of
// redefined methods, the endpoints of added/dropped edges, and — for the
// condensed view — the representatives global-edge-adjacent to dissolved
// SCC members. It never walks the whole graph (the lazy one-time index
// builds in ensureIndexes are the only O(n) work, paid on the first epoch
// and reused by all later ones).

// ApplyStats reports what one epoch did. TouchedMethods is the engine's
// invalidation work list: exactly the pre-existing methods whose cached
// PPTA summaries may have changed (local-edge changes and global-flag
// flips; see the soundness argument in overlay.go / DESIGN.md §10).
type ApplyStats struct {
	Epoch int

	NewMethods       int
	NewCallSites     int
	NewNodes         int
	NewEdges         int // effective (post-dedup) added edges
	DroppedEdges     int
	RedefinedMethods int

	// TouchedMethods lists the pre-existing methods whose summaries must
	// be invalidated, sorted. DependentMethods counts the methods the
	// reverse-dependency sketch marks as global-edge-adjacent to the
	// touched set — the bound a conservative cascading invalidator would
	// use; the summaries' method-locality lets the engine skip them.
	TouchedMethods   []pag.MethodID
	DependentMethods int

	// FlagFlips counts existing nodes whose global-edge frontier flag went
	// from unset to set this epoch (each forces its method onto
	// TouchedMethods).
	FlagFlips int

	// DissolvedSCCs / RebuiltReps describe the local condensation repair.
	DissolvedSCCs int
	RebuiltReps   int

	// OverlayFraction is the overlay's size after this epoch as a fraction
	// of the base graph's edge records — the auto-compaction signal.
	OverlayFraction float64
}

// Stats is the overlay's cumulative state, for pagstat and the harness.
type Stats struct {
	Epochs         int
	PatchedNodes   int // nodes carrying base-view overlay adjacency
	PatchedMethods int // distinct methods containing patched nodes
	AddedMethods   int
	AddedNodes     int
	AddedCallSites int
	OverlayEdges   int // out-direction edge records held by the overlay
	BaseEdges      int // out-direction edge records in the base CSR
	DroppedEdges   int // cumulative
	DissolvedSCCs  int // cumulative
	RebuiltReps    int // cumulative
}

// OverlayFraction returns OverlayEdges/BaseEdges (0 on an empty base).
func (s Stats) OverlayFraction() float64 {
	if s.BaseEdges == 0 {
		return 0
	}
	return float64(s.OverlayEdges) / float64(s.BaseEdges)
}

// Stats returns the overlay's cumulative statistics.
func (o *Overlay) Stats() Stats {
	patched := 0
	for _, p := range o.patchBase {
		if p >= 0 {
			patched++
		}
	}
	return Stats{
		Epochs:         o.epoch,
		PatchedNodes:   patched,
		PatchedMethods: len(o.patchedMethods),
		AddedMethods:   len(o.addedMethods),
		AddedNodes:     len(o.addedNodes),
		AddedCallSites: len(o.addedCallSites),
		OverlayEdges:   o.overlayEdges,
		BaseEdges:      o.g.NumEdges(),
		DroppedEdges:   o.droppedEdges,
		DissolvedSCCs:  o.dissolvedSCCs,
		RebuiltReps:    o.rebuiltReps,
	}
}

// Fraction returns the current overlay fraction (the Compact trigger).
func (o *Overlay) Fraction() float64 {
	if base := o.g.NumEdges(); base > 0 {
		return float64(o.overlayEdges) / float64(base)
	}
	return 0
}

// staged is the read-only plan one epoch compiles to: everything Apply's
// commit phase installs, computed against the pre-epoch overlay without
// mutating a single field. If Apply aborts anywhere up to (and including)
// the stage→commit boundary — the OverlayApply injection point — the
// overlay is exactly its pre-epoch self and the log is still applicable.
type staged struct {
	preMethods, preNodes int

	dropped map[pag.Edge]bool
	added   []pag.Edge

	touched      map[pag.MethodID]bool
	flipped      int
	methodLinks  [][2]pag.MethodID
	localMethods map[pag.MethodID]bool

	// dissolve is the condensation-repair plan: each entry names a
	// surviving SCC to dissolve into singletons.
	dissolve []dissolvePlan

	patch    map[pag.NodeID]bool
	addedOut map[pag.NodeID][]pag.Edge
	addedIn  map[pag.NodeID][]pag.Edge
}

type dissolvePlan struct {
	rep     pag.NodeID
	members []pag.NodeID
}

// Apply advances the overlay by one epoch with the changes recorded in l.
// It validates the whole log first — a rejected log leaves the overlay
// untouched — then runs in two phases (DESIGN.md §12): stage computes the
// epoch's entire effect read-only (dropped and effective added edges, the
// invalidation work list, the dissolution and patch plans), and commit
// installs it. The OverlayApply fault-injection point sits exactly on the
// boundary, so a fault there proves the atomicity claim: nothing staged,
// nothing lost. The log is consumed by a successful Apply and left
// reusable by any pre-commit abort.
//
// Apply is a mutator: quiesce all engines reading the overlay first, as
// for ResetCache and the other engine mutators.
func (o *Overlay) Apply(l *Log) (ApplyStats, error) {
	o.ensureIndexes()
	if err := l.validate(o); err != nil {
		return ApplyStats{}, err
	}
	st := o.stage(l)
	faultinject.Fire(faultinject.OverlayApply)
	return o.commit(l, st), nil
}

// Broken reports that a commit phase started and did not finish: an
// abort (panic) landed mid-mutation and the overlay's state is not
// trustworthy. Recovery boundaries consult it to distinguish clean
// pre-commit aborts (convert to an error, keep serving) from genuine
// mid-commit corruption (propagate).
func (o *Overlay) Broken() bool { return o.committing }

// stage compiles the log into the epoch's plan without mutating the
// overlay. Log-added elements are not registered yet, so their metadata
// is resolved straight from the log where needed.
func (o *Overlay) stage(l *Log) staged {
	st := staged{
		preMethods:   l.baseMethods,
		preNodes:     l.baseNodes,
		dropped:      make(map[pag.Edge]bool),
		touched:      make(map[pag.MethodID]bool),
		localMethods: make(map[pag.MethodID]bool),
		patch:        make(map[pag.NodeID]bool),
		addedOut:     make(map[pag.NodeID][]pag.Edge),
		addedIn:      make(map[pag.NodeID][]pag.Edge),
	}
	preNodes := st.preNodes

	// nodeMethod over the pre-epoch tables plus the log's own records —
	// the staged equivalent of Overlay.nodeMethod once commit extends the
	// tables.
	nodeMethod := func(n pag.NodeID) pag.MethodID {
		if int(n) >= preNodes {
			return l.nodes[int(n)-preNodes].Method
		}
		return o.nodeMethod(n)
	}

	// Dropped edges: everything owned by a redefined method. The
	// pre-epoch methodNodes index is complete for them — validate
	// guarantees redefined methods pre-exist, and the log's own nodes
	// carry no base edges.
	for _, m := range l.redefined {
		for _, n := range o.methodNodes[m] {
			for _, e := range o.baseLocalOut(n) {
				if o.ownerMethod(e) == m {
					st.dropped[e] = true
				}
			}
			for _, e := range o.baseGlobalOut(n) {
				if o.ownerMethod(e) == m {
					st.dropped[e] = true
				}
			}
			for _, e := range o.baseLocalIn(n) {
				if o.ownerMethod(e) == m {
					st.dropped[e] = true
				}
			}
			for _, e := range o.baseGlobalIn(n) {
				if o.ownerMethod(e) == m {
					st.dropped[e] = true
				}
			}
		}
	}

	// Effective added edges: dedup within the log and against edges that
	// are present and surviving. A log edge identical to a dropped one is
	// a genuine re-add. An edge out of a log-added node cannot pre-exist.
	logSeen := make(map[pag.Edge]bool, len(l.edges))
	for _, e := range l.edges {
		if logSeen[e] {
			continue
		}
		logSeen[e] = true
		if !st.dropped[e] && int(e.Src) < preNodes && o.hasEdgeBase(e) {
			continue
		}
		if st.dropped[e] {
			delete(st.dropped, e) // re-added by the new body: net no-op
			continue
		}
		st.added = append(st.added, e)
	}

	// Invalidation: computed against the PRE-epoch state (which staging
	// guarantees by construction — nothing has been rebuilt), so flag
	// flips are detected exactly.
	for _, m := range l.redefined {
		st.touched[m] = true
	}
	flipped := make(map[pag.NodeID]bool)
	markTouched := func(m pag.MethodID) {
		if m != pag.NoMethod && int(m) < st.preMethods {
			st.touched[m] = true
		}
	}
	for _, e := range st.added {
		if e.Kind.IsLocal() {
			markTouched(nodeMethod(e.Src))
			continue
		}
		// The flag checks read the pre-rebuild state, so several edges
		// into one node all see the flip; flipped dedups the count per
		// node (markTouched is idempotent anyway).
		if int(e.Src) < preNodes && !o.HasGlobalOut(e.Src, false) {
			flipped[e.Src] = true
			markTouched(nodeMethod(e.Src))
		}
		if int(e.Dst) < preNodes && !o.HasGlobalIn(e.Dst, false) {
			flipped[e.Dst] = true
			markTouched(nodeMethod(e.Dst))
		}
		if o.methodNbrs != nil {
			ms, md := nodeMethod(e.Src), nodeMethod(e.Dst)
			if ms != pag.NoMethod && md != pag.NoMethod && ms != md {
				st.methodLinks = append(st.methodLinks, [2]pag.MethodID{ms, md})
			}
		}
	}
	st.flipped = len(flipped)

	// Dissolution plan: methods whose local edges changed lose their SCC
	// collapse — a changed body voids the freeze-time cycle proof, so
	// their nodes fall back to singleton representatives. Log-added
	// methods have no index entry yet (and no groups); log-added nodes of
	// redefined methods are singletons by construction. Both contribute
	// nothing, exactly as they would post-registration.
	for _, m := range l.redefined {
		st.localMethods[m] = true
	}
	for _, e := range st.added {
		if e.Kind.IsLocal() {
			if m := nodeMethod(e.Src); m != pag.NoMethod {
				st.localMethods[m] = true
			}
		}
	}
	if !o.trivial {
		planned := make(map[pag.NodeID]bool)
		for _, m := range sortedMethods(st.localMethods) {
			if int(m) >= len(o.methodNodes) {
				continue
			}
			for _, n := range o.methodNodes[m] {
				r := o.rep[n]
				if planned[r] {
					continue
				}
				members, ok := o.groups[r]
				if !ok {
					continue
				}
				planned[r] = true
				st.dissolve = append(st.dissolve, dissolvePlan{rep: r, members: members})
			}
		}
	}

	// Base-view patch set: endpoints of every changed edge plus every
	// added node (their adjacency exists only in the overlay).
	for e := range st.dropped {
		st.patch[e.Src] = true
		st.patch[e.Dst] = true
	}
	for _, e := range st.added {
		st.patch[e.Src] = true
		st.patch[e.Dst] = true
		st.addedOut[e.Src] = append(st.addedOut[e.Src], e)
		st.addedIn[e.Dst] = append(st.addedIn[e.Dst], e)
	}
	for i := range l.nodes {
		st.patch[pag.NodeID(preNodes+i)] = true
	}
	return st
}

// commit installs a staged epoch. From its first mutation to its last it
// holds o.committing, so an abort inside it is detectable as genuine
// corruption (Broken); everything fallible about the epoch already
// happened during staging.
func (o *Overlay) commit(l *Log, st staged) ApplyStats {
	o.committing = true
	preNodes := st.preNodes

	// 1. Metadata: methods, call sites and node records join the
	// overlay's side tables; the base graph is never written.
	for _, m := range l.methods {
		o.addedMethods = append(o.addedMethods, m)
		o.methodNodes = append(o.methodNodes, nil)
	}
	o.addedCallSites = append(o.addedCallSites, l.callSites...)
	for i, nd := range l.nodes {
		id := pag.NodeID(preNodes + i)
		o.addedNodes = append(o.addedNodes, nd)
		o.patchBase = append(o.patchBase, -1)
		o.patchCond = append(o.patchCond, -1)
		if o.rep != nil {
			o.rep = append(o.rep, id)
		}
		if nd.Method != pag.NoMethod {
			o.methodNodes[nd.Method] = append(o.methodNodes[nd.Method], id)
		}
	}

	// 2. Reverse-dependency sketch links for the epoch's global edges.
	for _, lk := range st.methodLinks {
		o.linkMethods(lk[0], lk[1])
	}

	// 3. Condensation repair, part 1: dissolve the planned SCCs.
	var dissolved []pag.NodeID
	for _, p := range st.dissolve {
		for _, mb := range p.members {
			o.rep[mb] = mb
		}
		dissolved = append(dissolved, p.members...)
		delete(o.groups, p.rep)
	}
	o.dissolvedSCCs += len(st.dissolve)

	// 4. Base-view rebuild of the patch set.
	for _, n := range sortedNodes(st.patch) {
		o.rebuildBase(n, st.dropped, st.addedOut[n], st.addedIn[n])
	}

	// 5. Condensation repair, part 2: rebuild the condensed spans whose
	// contents this epoch invalidated — the repaired representatives of
	// every patched node and every node of a local-change method, plus
	// the representatives global-edge-adjacent to dissolved members
	// (their freeze-time spans name the old representatives).
	rebuilt := 0
	if !o.trivial {
		condSet := make(map[pag.NodeID]bool)
		for n := range st.patch {
			condSet[o.rep[n]] = true
		}
		for m := range st.localMethods {
			if m == pag.NoMethod || int(m) >= len(o.methodNodes) {
				continue
			}
			for _, n := range o.methodNodes[m] {
				condSet[o.rep[n]] = true
			}
		}
		for _, d := range dissolved {
			for _, e := range o.baseGlobalOut(d) {
				condSet[o.rep[e.Dst]] = true
			}
			for _, e := range o.baseGlobalIn(d) {
				condSet[o.rep[e.Src]] = true
			}
			// Local neighbours live in the same (dissolved) method and are
			// already in condSet via the localMethods loop.
		}
		for _, r := range sortedNodes(condSet) {
			o.rebuildCond(r)
		}
		rebuilt = len(condSet)
		o.rebuiltReps += rebuilt
	}

	// 6. Bookkeeping and the epoch's report.
	o.droppedEdges += len(st.dropped)
	for n := range st.patch {
		if m := o.nodeMethod(n); m != pag.NoMethod {
			o.patchedMethods[m] = true
		}
	}
	o.epoch++

	stats := ApplyStats{
		Epoch:            o.epoch,
		NewMethods:       len(l.methods),
		NewCallSites:     len(l.callSites),
		NewNodes:         len(l.nodes),
		NewEdges:         len(st.added),
		DroppedEdges:     len(st.dropped),
		RedefinedMethods: len(l.redefined),
		TouchedMethods:   sortedMethods(st.touched),
		FlagFlips:        st.flipped,
		DissolvedSCCs:    len(st.dissolve),
		RebuiltReps:      rebuilt,
		OverlayFraction:  o.Fraction(),
	}
	// The sketch bound: methods adjacent (over global edges) to the
	// touched set that a cascading invalidator would also have dropped.
	deps := make(map[pag.MethodID]bool)
	for _, m := range stats.TouchedMethods {
		for nb := range o.methodNbrs[m] {
			if !st.touched[nb] {
				deps[nb] = true
			}
		}
	}
	stats.DependentMethods = len(deps)
	o.committing = false
	return stats
}

// rebuildBase installs n's base-view replacement adjacency: current edges
// minus dropped plus the epoch's additions, partition preserved. Order is
// deterministic: surviving edges keep their relative order, added edges
// append in log order within their partition half.
func (o *Overlay) rebuildBase(n pag.NodeID, dropped map[pag.Edge]bool, addOut, addIn []pag.Edge) {
	build := func(localCur, globalCur, adds []pag.Edge) (edges []pag.Edge, split int32) {
		for _, e := range localCur {
			if !dropped[e] {
				edges = append(edges, e)
			}
		}
		for _, e := range adds {
			if e.Kind.IsLocal() {
				edges = append(edges, e)
			}
		}
		split = int32(len(edges))
		for _, e := range globalCur {
			if !dropped[e] {
				edges = append(edges, e)
			}
		}
		for _, e := range adds {
			if e.Kind.IsGlobal() {
				edges = append(edges, e)
			}
		}
		return edges, split
	}
	var a patchAdj
	a.out, a.outSplit = build(o.baseLocalOut(n), o.baseGlobalOut(n), addOut)
	a.in, a.inSplit = build(o.baseLocalIn(n), o.baseGlobalIn(n), addIn)

	if p := o.patchBase[n]; p >= 0 {
		o.overlayEdges += len(a.out) - len(o.baseAdj[p].out)
		o.baseAdj[p] = a
		return
	}
	o.patchBase[n] = int32(len(o.baseAdj))
	o.baseAdj = append(o.baseAdj, a)
	o.overlayEdges += len(a.out)
}

// rebuildCond installs representative r's condensed-view adjacency: the
// union of its surviving members' current base-view edges with endpoints
// mapped through the repaired rep function, intra-SCC assign self-loops
// removed and duplicates merged — exactly the freeze-time gather, run on
// one representative.
func (o *Overlay) rebuildCond(r pag.NodeID) {
	members := o.groups[r]
	if members == nil {
		members = []pag.NodeID{r}
	}
	mapEdge := func(e pag.Edge) pag.Edge {
		return pag.Edge{Src: o.rep[e.Src], Dst: o.rep[e.Dst], Kind: e.Kind, Label: e.Label}
	}
	gather := func(in bool) (edges []pag.Edge, split int32) {
		var locals, globals []pag.Edge
		for _, mb := range members {
			var loc, glob []pag.Edge
			if in {
				loc, glob = o.baseLocalIn(mb), o.baseGlobalIn(mb)
			} else {
				loc, glob = o.baseLocalOut(mb), o.baseGlobalOut(mb)
			}
			for _, e := range loc {
				me := mapEdge(e)
				if me.Kind == pag.Assign && me.Src == me.Dst {
					continue // collapsed cycle edge: a state-level no-op
				}
				locals = append(locals, me)
			}
			for _, e := range glob {
				globals = append(globals, mapEdge(e))
			}
		}
		locals = dedupEdges(locals)
		globals = dedupEdges(globals)
		edges = append(locals, globals...)
		return edges, int32(len(locals))
	}
	var a patchAdj
	a.out, a.outSplit = gather(false)
	a.in, a.inSplit = gather(true)

	if p := o.patchCond[r]; p >= 0 {
		o.condAdj[p] = a
		return
	}
	o.patchCond[r] = int32(len(o.condAdj))
	o.condAdj = append(o.condAdj, a)
}

// Compact merges the overlay into a fresh, fully re-frozen (and
// re-condensed) Graph carrying identical node/method/call-site IDs, so
// cached query variables and result sets remain meaningful. The overlay
// itself is left untouched; callers (the engine's auto-compaction) swap
// the graph in and drop the overlay — and must also drop the summary
// cache, because the fresh condensation may choose different
// representatives.
func (o *Overlay) Compact() (*pag.Graph, error) {
	g := o.g
	ng := pag.NewGraph()
	for c := 0; c < g.NumClasses(); c++ {
		ci := g.ClassInfo(pag.ClassID(c))
		ng.AddClass(ci.Name, ci.Parent)
	}
	for f := 0; f < g.NumFields(); f++ {
		ng.AddField(g.FieldName(pag.FieldID(f)))
	}
	for m := 0; m < o.NumMethods(); m++ {
		mi := o.MethodInfo(pag.MethodID(m))
		ng.AddMethod(mi.Name, mi.Class)
	}
	for cs := 0; cs < o.NumCallSites(); cs++ {
		info := o.CallSiteInfo(pag.CallSiteID(cs))
		id := ng.AddCallSite(info.Caller, info.Name)
		for _, t := range info.Targets {
			ng.AddCallTarget(id, t)
		}
	}
	total := o.NumNodes()
	for n := 0; n < total; n++ {
		nd := o.Node(pag.NodeID(n))
		ng.AddNode(nd.Kind, nd.Method, nd.Class, nd.Name)
	}
	// Crash-consistency probe: the rebuild so far has only touched ng —
	// the overlay and its base graph are read-only throughout Compact, so
	// an abort here (or anywhere else in the rebuild) must leave the
	// pre-compaction engine fully usable.
	faultinject.Fire(faultinject.CompactRebuild)
	for n := 0; n < total; n++ {
		for _, e := range o.baseLocalOut(pag.NodeID(n)) {
			ng.AddEdge(e)
		}
		for _, e := range o.baseGlobalOut(pag.NodeID(n)) {
			ng.AddEdge(e)
		}
	}
	// The rebuild preserves method and node IDs, so the open-world
	// bodyless-method table transfers verbatim.
	if err := ng.AdoptBodyless(g); err != nil {
		return nil, err
	}
	ng.ResolveDerived()
	if err := ng.Validate(); err != nil {
		return nil, err
	}
	ng.Freeze()
	return ng, nil
}

// dedupEdges sorts es by (Src, Dst, Kind, Label) and removes duplicates in
// place (the freeze-time condensation's helper, local to this package).
func dedupEdges(es []pag.Edge) []pag.Edge {
	if len(es) < 2 {
		return es
	}
	slices.SortFunc(es, func(a, b pag.Edge) int {
		if c := cmp.Compare(a.Src, b.Src); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Dst, b.Dst); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		return cmp.Compare(a.Label, b.Label)
	})
	return slices.Compact(es)
}

func sortedNodes(set map[pag.NodeID]bool) []pag.NodeID {
	out := make([]pag.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

func sortedMethods(set map[pag.MethodID]bool) []pag.MethodID {
	out := make([]pag.MethodID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	slices.Sort(out)
	return out
}

package cfl

import (
	"testing"

	"dynsum/internal/fixture"
	"dynsum/internal/pag"
)

// TestBalancedParens solves the classic matched-parentheses language
// S → ε | ( S ) | S S over a small graph.
func TestBalancedParens(t *testing.T) {
	g := NewGrammar()
	open := g.Terminal("(")
	clos := g.Terminal(")")
	s := g.Nonterminal("S")
	g.Rule(s)
	g.Rule(s, open, s, clos)
	g.Rule(s, s, s)

	// 0 -(-> 1 -(-> 2 -)-> 3 -)-> 4 and a stray close 1 -)-> 5
	edges := []Edge{
		{0, 1, open}, {1, 2, open}, {2, 3, clos}, {3, 4, clos}, {1, 5, clos},
	}
	rel := Solve(g, 6, edges)

	want := []struct {
		u, v int32
		in   bool
	}{
		{0, 4, true},  // (())
		{1, 3, true},  // ()
		{0, 0, true},  // ε
		{0, 3, false}, // (()
		{1, 4, false}, // ())
		{0, 5, true},  // () via the stray close
	}
	for _, w := range want {
		if got := rel.Reachable(s, w.u, w.v); got != w.in {
			t.Errorf("S-path %d→%d = %v, want %v", w.u, w.v, got, w.in)
		}
	}
}

func TestUnaryAndLongRules(t *testing.T) {
	g := NewGrammar()
	a := g.Terminal("a")
	b := g.Terminal("b")
	c := g.Terminal("c")
	s := g.Nonterminal("S")
	x := g.Nonterminal("X")
	g.Rule(s, a, b, c) // long rule: binarised internally
	g.Rule(x, s)       // unary

	edges := []Edge{{0, 1, a}, {1, 2, b}, {2, 3, c}}
	rel := Solve(g, 4, edges)
	if !rel.Reachable(s, 0, 3) {
		t.Error("abc path not derived for S")
	}
	if !rel.Reachable(x, 0, 3) {
		t.Error("unary rule X→S not applied")
	}
	if rel.Reachable(s, 0, 2) {
		t.Error("partial ab derived S")
	}
	if g.NumRules() < 3 {
		t.Errorf("NumRules = %d, want >= 3 after binarisation", g.NumRules())
	}
}

func TestGrammarPanics(t *testing.T) {
	g := NewGrammar()
	a := g.Terminal("a")
	defer func() {
		if recover() == nil {
			t.Error("Rule with terminal head did not panic")
		}
	}()
	g.Rule(a, a)
}

func TestRedeclareKindPanics(t *testing.T) {
	g := NewGrammar()
	g.Terminal("x")
	defer func() {
		if recover() == nil {
			t.Error("redeclaring terminal as nonterminal did not panic")
		}
	}()
	g.Nonterminal("x")
}

// TestLFTOracleMicros validates the LFT encoding on the micro fixtures
// that need no context sensitivity.
func TestLFTOracleMicros(t *testing.T) {
	cases := map[string]*fixture.Micro{
		"AssignChain":   fixture.AssignChain(4),
		"FieldPair":     fixture.FieldPair(),
		"TwoFields":     fixture.TwoFields(),
		"PointsToCycle": fixture.PointsToCycle(),
		"GlobalFlow":    fixture.GlobalFlow(),
	}
	for name, m := range cases {
		t.Run(name, func(t *testing.T) {
			oracle := PointsToOracle(m.Prog.G)
			got := oracle[m.Query]
			has := func(o pag.NodeID) bool {
				for _, x := range got {
					if x == o {
						return true
					}
				}
				return false
			}
			for _, w := range m.Want {
				if !has(w) {
					t.Errorf("oracle pts(%s) = %v missing %s",
						m.Prog.G.NodeString(m.Query), got, m.Prog.G.NodeString(w))
				}
			}
			for _, nw := range m.Not {
				if has(nw) {
					t.Errorf("oracle pts(%s) = %v has spurious %s",
						m.Prog.G.NodeString(m.Query), got, m.Prog.G.NodeString(nw))
				}
			}
		})
	}
}

// TestLFTContextInsensitive: on the ContextSeparation fixture the oracle
// must merge both objects — it implements §3.2 (no context sensitivity).
func TestLFTContextInsensitive(t *testing.T) {
	m := fixture.ContextSeparation()
	oracle := PointsToOracle(m.Prog.G)
	if got := oracle[m.Query]; len(got) != 2 {
		t.Errorf("oracle pts = %v, want 2 objects (context-insensitive)", got)
	}
}

package cfl

import (
	"dynsum/internal/pag"
)

// This file encodes the paper's field-sensitive flows-to language LFT
// (equations (2) and (3), §3.2) as a Grammar over a PAG, providing an
// executable specification of field-sensitive points-to analysis:
//
//	flowsTo    → new ( assign | store(f) alias load(f) )*
//	alias      → flowsToBar flowsTo
//	flowsToBar → ( assignBar | loadBar(f) alias storeBar(f) )* newBar
//
// Global edges (assignglobal/entry/exit) are mapped onto the assign
// terminal, i.e. the encoding is deliberately context-INsensitive — that
// is exactly the analysis of paper §3.2, to which the context-sensitive
// engines must be compared only on graphs where context cannot matter
// (single method, or no recursion and no reuse of a callee from two
// sites... in practice: local-only graphs).

// LFT bundles the grammar, start symbol and edge encoding for one PAG.
type LFT struct {
	Grammar *Grammar
	FlowsTo Symbol
	Alias   Symbol
	Edges   []Edge
	Nodes   int
}

// BuildLFT encodes g. Every PAG edge contributes its terminal and the
// inverse terminal on the reversed endpoints (the "barred" edges of §3.2).
func BuildLFT(g *pag.Graph) *LFT {
	gr := NewGrammar()
	newT := gr.Terminal("new")
	newBar := gr.Terminal("new̅")
	asn := gr.Terminal("assign")
	asnBar := gr.Terminal("assign̅")

	flowsTo := gr.Nonterminal("flowsTo")
	flowsToBar := gr.Nonterminal("flowsTo̅")
	alias := gr.Nonterminal("alias")
	f := gr.Nonterminal("F")     // ( assign | store(f) alias load(f) )*
	fBar := gr.Nonterminal("F̅") // ( assignBar | loadBar(f) alias storeBar(f) )*

	gr.Rule(flowsTo, newT, f)
	gr.Rule(f)
	gr.Rule(f, f, asn)
	gr.Rule(flowsToBar, fBar, newBar)
	gr.Rule(fBar)
	gr.Rule(fBar, asnBar, fBar)
	gr.Rule(alias, flowsToBar, flowsTo)

	nf := g.NumFields()
	ld := make([]Symbol, nf)
	ldBar := make([]Symbol, nf)
	st := make([]Symbol, nf)
	stBar := make([]Symbol, nf)
	for i := 0; i < nf; i++ {
		name := g.FieldName(pag.FieldID(i))
		ld[i] = gr.Terminal("ld(" + name + ")")
		ldBar[i] = gr.Terminal("ld̅(" + name + ")")
		st[i] = gr.Terminal("st(" + name + ")")
		stBar[i] = gr.Terminal("st̅(" + name + ")")
		gr.Rule(f, f, st[i], alias, ld[i])
		gr.Rule(fBar, ldBar[i], alias, stBar[i], fBar)
	}

	l := &LFT{Grammar: gr, FlowsTo: flowsTo, Alias: alias, Nodes: g.NumNodes()}
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.Out(pag.NodeID(i)) {
			var t, tBar Symbol
			switch e.Kind {
			case pag.New:
				t, tBar = newT, newBar
			case pag.Assign, pag.AssignGlobal, pag.Entry, pag.Exit:
				t, tBar = asn, asnBar
			case pag.Load:
				t, tBar = ld[e.Field()], ldBar[e.Field()]
			case pag.Store:
				t, tBar = st[e.Field()], stBar[e.Field()]
			}
			l.Edges = append(l.Edges, Edge{Src: int32(e.Src), Dst: int32(e.Dst), Label: t})
			l.Edges = append(l.Edges, Edge{Src: int32(e.Dst), Dst: int32(e.Src), Label: tBar})
		}
	}
	return l
}

// PointsToOracle solves LFT over g and returns the context-insensitive
// field-sensitive points-to relation: for each variable, the sorted set of
// objects o with o flowsTo v.
func PointsToOracle(g *pag.Graph) map[pag.NodeID][]pag.NodeID {
	l := BuildLFT(g)
	rel := Solve(l.Grammar, l.Nodes, l.Edges)
	out := make(map[pag.NodeID][]pag.NodeID)
	for _, p := range rel.Pairs(l.FlowsTo) {
		o, v := pag.NodeID(p[0]), pag.NodeID(p[1])
		if g.Node(o).Kind == pag.Object && g.Node(v).Kind != pag.Object {
			out[v] = append(out[v], o)
		}
	}
	for v := range out {
		s := out[v]
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
	}
	return out
}

package cfl

// Edge is one labelled graph edge for the solver.
type Edge struct {
	Src, Dst int32
	Label    Symbol
}

// Relation holds the solved reachability facts per symbol.
type Relation struct {
	g     *Grammar
	n     int
	facts map[fact]bool

	// Facts counts derived facts, a deterministic work measure.
	Facts int
}

type fact struct {
	sym      Symbol
	src, dst int32
}

// Reachable reports whether some path u→v derives sym.
func (r *Relation) Reachable(sym Symbol, u, v int32) bool {
	return r.facts[fact{sym, u, v}]
}

// Pairs returns all (u,v) with u→v deriving sym.
func (r *Relation) Pairs(sym Symbol) [][2]int32 {
	var out [][2]int32
	for f := range r.facts {
		if f.sym == sym {
			out = append(out, [2]int32{f.src, f.dst})
		}
	}
	return out
}

// Solve computes all-pairs CFL reachability of grammar g over a graph with
// numNodes nodes and the given labelled edges.
func Solve(g *Grammar, numNodes int, edges []Edge) *Relation {
	r := &Relation{g: g, n: numNodes, facts: make(map[fact]bool)}
	nsym := g.NumSymbols()

	// adjacency per symbol: bySrc[sym][u] -> dsts, byDst[sym][v] -> srcs
	bySrc := make([][][]int32, nsym)
	byDst := make([][][]int32, nsym)
	for s := 0; s < nsym; s++ {
		bySrc[s] = make([][]int32, numNodes)
		byDst[s] = make([][]int32, numNodes)
	}

	// rule indexes
	unaryBy := make([][]Symbol, nsym) // B -> heads A with A→B
	for _, u := range g.unary {
		unaryBy[u[1]] = append(unaryBy[u[1]], u[0])
	}
	binByFirst := make([][][2]Symbol, nsym)  // B -> (A, C) with A→B C
	binBySecond := make([][][2]Symbol, nsym) // C -> (A, B) with A→B C
	for _, b := range g.binary {
		binByFirst[b[1]] = append(binByFirst[b[1]], [2]Symbol{b[0], b[2]})
		binBySecond[b[2]] = append(binBySecond[b[2]], [2]Symbol{b[0], b[1]})
	}

	var work []fact
	add := func(f fact) {
		if !r.facts[f] {
			r.facts[f] = true
			bySrc[f.sym][f.src] = append(bySrc[f.sym][f.src], f.dst)
			byDst[f.sym][f.dst] = append(byDst[f.sym][f.dst], f.src)
			work = append(work, f)
			r.Facts++
		}
	}

	for _, e := range edges {
		add(fact{e.Label, e.Src, e.Dst})
	}
	for _, lhs := range g.eps {
		for u := int32(0); u < int32(numNodes); u++ {
			add(fact{lhs, u, u})
		}
	}

	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]

		for _, a := range unaryBy[f.sym] {
			add(fact{a, f.src, f.dst})
		}
		// f is B in A→B C: join with C-facts starting at f.dst.
		for _, ac := range binByFirst[f.sym] {
			for _, w := range bySrc[ac[1]][f.dst] {
				add(fact{ac[0], f.src, w})
			}
		}
		// f is C in A→B C: join with B-facts ending at f.src.
		for _, ab := range binBySecond[f.sym] {
			for _, u := range byDst[ab[1]][f.src] {
				add(fact{ab[0], u, f.dst})
			}
		}
	}
	return r
}

// Package cfl implements generic context-free-language reachability
// (paper §3.1): given a directed graph with edge labels from an alphabet Σ
// and a context-free grammar over Σ, it computes for every nonterminal A
// the relation {(u,v) : some u→v path spells a string in L(A)}.
//
// The solver is the classic worklist algorithm of Melski–Reps / Yannakakis
// with O(Γ³N³) worst-case time. It is far too slow for real programs —
// which is the paper's point — but on micro graphs it is an executable
// specification: the package also builds the paper's LFT grammar
// (equations (2) and (3)) so that the specialised demand-driven engines
// can be validated against it (see internal/enginetest).
package cfl

import "fmt"

// Symbol identifies a terminal or nonterminal within one Grammar.
type Symbol int32

// Grammar is a context-free grammar under construction. Symbols must be
// created through Terminal/Nonterminal before use in rules.
type Grammar struct {
	names   []string
	isTerm  []bool
	byName  map[string]Symbol
	eps     []Symbol // A → ε
	unary   [][2]Symbol
	binary  [][3]Symbol // A → B C
	nextVar int
}

// NewGrammar returns an empty grammar.
func NewGrammar() *Grammar {
	return &Grammar{byName: make(map[string]Symbol)}
}

func (g *Grammar) intern(name string, term bool) Symbol {
	if s, ok := g.byName[name]; ok {
		if g.isTerm[s] != term {
			panic(fmt.Sprintf("cfl: symbol %q redeclared with different kind", name))
		}
		return s
	}
	s := Symbol(len(g.names))
	g.names = append(g.names, name)
	g.isTerm = append(g.isTerm, term)
	g.byName[name] = s
	return s
}

// Terminal declares (or retrieves) a terminal symbol.
func (g *Grammar) Terminal(name string) Symbol { return g.intern(name, true) }

// Nonterminal declares (or retrieves) a nonterminal symbol.
func (g *Grammar) Nonterminal(name string) Symbol { return g.intern(name, false) }

// NumSymbols returns the number of declared symbols.
func (g *Grammar) NumSymbols() int { return len(g.names) }

// Name returns the name of s.
func (g *Grammar) Name(s Symbol) string { return g.names[s] }

// IsTerminal reports whether s is a terminal.
func (g *Grammar) IsTerminal(s Symbol) bool { return g.isTerm[s] }

// Rule adds the production lhs → rhs... . The empty rhs is an ε-rule.
// Long right-hand sides are binarised on the fly with fresh helper
// nonterminals, so the solver only ever sees ε, unary and binary rules.
func (g *Grammar) Rule(lhs Symbol, rhs ...Symbol) {
	if g.isTerm[lhs] {
		panic(fmt.Sprintf("cfl: rule head %q is a terminal", g.names[lhs]))
	}
	switch len(rhs) {
	case 0:
		g.eps = append(g.eps, lhs)
	case 1:
		g.unary = append(g.unary, [2]Symbol{lhs, rhs[0]})
	case 2:
		g.binary = append(g.binary, [3]Symbol{lhs, rhs[0], rhs[1]})
	default:
		// lhs → rhs[0] helper;  helper → rhs[1:] ... recursively.
		helper := g.fresh()
		g.binary = append(g.binary, [3]Symbol{lhs, rhs[0], helper})
		g.Rule(helper, rhs[1:]...)
	}
}

func (g *Grammar) fresh() Symbol {
	g.nextVar++
	return g.intern(fmt.Sprintf("__t%d", g.nextVar), false)
}

// NumRules returns the number of stored (normalised) rules.
func (g *Grammar) NumRules() int { return len(g.eps) + len(g.unary) + len(g.binary) }

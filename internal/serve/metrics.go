package serve

import (
	"sync"
	"sync/atomic"

	"dynsum/internal/core"
)

// Lane is a request size class. Admission probes the session's summary
// cache (core.DynSum.SummaryCached) for every queried variable: a request
// whose whole footprint is warm is cheap — it will be answered mostly by
// cache lookups — while anything needing a cold PPTA traversal is a
// whale. Each lane has its own bounded queue and worker pool, so a burst
// of whales saturates the whale lane and sheds whales; warm lookups keep
// flowing beside them (the cheap-lane p99 bound in the overload tests).
type Lane int

const (
	LaneCheap Lane = iota
	LaneWhale

	numLanes = 2
)

func (l Lane) String() string {
	switch l {
	case LaneCheap:
		return "cheap"
	case LaneWhale:
		return "whale"
	}
	return "unknown"
}

// laneCounters is the hot-path form: workers and the admission path add
// with atomics, never under a lock.
type laneCounters struct {
	admitted        atomic.Int64
	shed            atomic.Int64
	expired         atomic.Int64
	completed       atomic.Int64
	drained         atomic.Int64
	deadlineCancels atomic.Int64
	quarantined     atomic.Int64
}

// LaneCounters is one lane's lifetime counters. Every admitted request
// ends in exactly one of Expired or Completed; Shed requests were never
// admitted. Drained counts the subset of Completed that finished while
// the server was draining; DeadlineCancels requests the watchdog
// canceled mid-run (they still complete, with partial ErrCanceled
// results); Quarantined counts per-query *QueryPanicError results that
// the engine's slot isolation contained.
type LaneCounters struct {
	Admitted        int64 `json:"admitted"`
	Shed            int64 `json:"shed"`
	Expired         int64 `json:"expired"`
	Completed       int64 `json:"completed"`
	Drained         int64 `json:"drained"`
	DeadlineCancels int64 `json:"deadline_cancels"`
	Quarantined     int64 `json:"quarantined"`
}

func (c *laneCounters) snapshot() LaneCounters {
	return LaneCounters{
		Admitted:        c.admitted.Load(),
		Shed:            c.shed.Load(),
		Expired:         c.expired.Load(),
		Completed:       c.completed.Load(),
		Drained:         c.drained.Load(),
		DeadlineCancels: c.deadlineCancels.Load(),
		Quarantined:     c.quarantined.Load(),
	}
}

// TenantCounters attributes admission outcomes to one tenant:
// Admitted/Shed mirror the lane counters, QuotaRejected counts token-
// bucket refusals (which never reach a lane).
type TenantCounters struct {
	Admitted      int64 `json:"admitted"`
	Shed          int64 `json:"shed"`
	QuotaRejected int64 `json:"quota_rejected"`
}

// serveMetrics is the server's counter block: per-lane atomics plus a
// small mutex-guarded tenant map (tenant cardinality is low and the map
// is touched once per admission, so a lock is fine there).
type serveMetrics struct {
	lanes [numLanes]laneCounters

	mu      sync.Mutex
	tenants map[string]*TenantCounters
}

func (m *serveMetrics) tenant(name string, f func(*TenantCounters)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tenants == nil {
		m.tenants = make(map[string]*TenantCounters)
	}
	tc := m.tenants[name]
	if tc == nil {
		tc = &TenantCounters{}
		m.tenants[name] = tc
	}
	f(tc)
}

// MetricsSnapshot is one consistent-enough read of the serving state:
// lane and tenant counters, the session count, readiness, and the
// engine-level metrics summed across every session (each session's
// core.Metrics.Snapshot added together). It is what /metrics serves.
type MetricsSnapshot struct {
	Ready    bool                      `json:"ready"`
	Sessions int                       `json:"sessions"`
	Lanes    map[string]LaneCounters   `json:"lanes"`
	Tenants  map[string]TenantCounters `json:"tenants"`
	Engine   core.Metrics              `json:"engine"`
}

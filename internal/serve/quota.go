package serve

import (
	"sync"
	"time"
)

// QuotaConfig is a per-tenant token bucket: Rate tokens refill per
// second up to Burst, and each admitted request spends one. The zero
// value disables quotas entirely. Buckets start full, so a tenant's
// first Burst requests always admit.
type QuotaConfig struct {
	Rate  float64
	Burst float64
}

func (q QuotaConfig) enabled() bool { return q.Rate > 0 }

type bucket struct {
	tokens float64
	last   time.Time
}

// quotas holds one lazily created bucket per tenant. The lock is held
// only for the refill arithmetic — a few float ops per admission.
type quotas struct {
	cfg QuotaConfig

	mu sync.Mutex
	m  map[string]*bucket
}

func newQuotas(cfg QuotaConfig) *quotas {
	return &quotas{cfg: cfg, m: make(map[string]*bucket)}
}

// allow spends one token from tenant's bucket. When the bucket is empty
// it reports false plus the time until one token will have refilled —
// the *QuotaError's RetryAfter.
func (q *quotas) allow(tenant string, now time.Time) (bool, time.Duration) {
	if !q.cfg.enabled() {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.m[tenant]
	if b == nil {
		b = &bucket{tokens: q.cfg.Burst, last: now}
		q.m[tenant] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * q.cfg.Rate
		if b.tokens > q.cfg.Burst {
			b.tokens = q.cfg.Burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		retry := time.Duration((1 - b.tokens) / q.cfg.Rate * float64(time.Second))
		return false, retry
	}
	b.tokens--
	return true, 0
}

package serve

import (
	"sync"
	"sync/atomic"

	"dynsum/internal/core"
)

// Session is one tenant's private view of the shared program: its own
// core.DynSum whose delta.Overlay floats over the server's frozen base
// graph. The base is never written — every session (and the server's
// oracle users) reads the same immutable CSR arrays — so sessions are
// isolated by construction: one session's ApplyDelta touches only its
// own overlay and summary cache.
//
// Concurrency follows the engine's quiescence contract (DESIGN.md §10):
// queries on one session may run concurrently with anything on other
// sessions, but a session's mutators must not race its own queries. The
// session RWMutex encodes exactly that — queries and lane-classifier
// probes take RLock, Server.Apply takes Lock — serialising apply against
// this session's in-flight queries and nothing else.
type Session struct {
	// ID names the session in the registry, in request routing, and as
	// the per-session state directory under Config.StateDir.
	ID string
	// Tenant is the quota principal charged for the session's requests
	// (a Request may override it per call).
	Tenant string

	mu  sync.RWMutex
	eng *core.DynSum

	// epoch counts applied deltas; payloads holds their wire encodings in
	// order (captured before ApplyDelta consumes each log), so draining
	// persists the session as base snapshot + replay journal without
	// re-encoding anything. payloads is guarded by mu; epoch is atomic so
	// dirtiness checks and tests read it without touching the lock.
	epoch    atomic.Uint64
	payloads [][]byte
}

// Engine exposes the session's engine for direct (test/oracle) use.
// Callers must honour the quiescence contract themselves — the serve
// path does it via the session lock.
func (s *Session) Engine() *core.DynSum { return s.eng }

// Epoch returns how many deltas the session has applied; 0 means the
// session is clean (still the shared base) and need not be persisted.
func (s *Session) Epoch() uint64 { return s.epoch.Load() }

package serve

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestLoadOracleFidelity is the flagship serving proof: many concurrent
// sessions replay evolve waves and mixed warm/cold query traffic through
// the full admission pipeline, and every admitted answer is checked
// byte-identical against a direct-engine oracle built over the same wave
// prefix. Zero protocol violations, zero goroutine leaks, and the
// post-load drain persists every dirty session.
func TestLoadOracleFidelity(t *testing.T) {
	base := runtime.NumGoroutine()
	ev := testEvolve(t, 4)
	srv := newTestServer(t, ev, Config{Workers: 2, QueueDepth: 64, StateDir: t.TempDir()})

	rep, err := RunLoad(context.Background(), srv, ev, LoadConfig{
		Sessions:          16,
		Requests:          12,
		QueriesPerRequest: 3,
		ApplyEvery:        4,
		WarmBias:          0.5,
		Tenants:           []string{"alpha", "beta", "gamma"},
		Verify:            true,
		Seed:              42,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %v", v)
	}
	if rep.Issued != 16*12 {
		t.Errorf("issued %d requests, want %d", rep.Issued, 16*12)
	}
	if rep.Completed == 0 || rep.Verified == 0 {
		t.Fatalf("no verified traffic: completed=%d verified=%d", rep.Completed, rep.Verified)
	}
	t.Logf("load: issued=%d completed=%d shed=%d verified=%d skipped=%d",
		rep.Issued, rep.Completed, rep.Shed, rep.Verified, rep.VerifySkipped)

	// Warm bias must actually produce cheap-lane traffic, or the lane
	// split is vacuous.
	if cheap := rep.Lanes[LaneCheap.String()]; cheap == nil || cheap.Completed == 0 {
		t.Error("no cheap-lane traffic despite warm bias")
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	goroutineStable(t, base)
}

// TestLoadUnderOverloadStaysTyped squeezes the same load through a
// one-worker, two-deep server: a large fraction of requests must be shed
// or expire, every refusal typed, and everything that did complete still
// oracle-identical.
func TestLoadUnderOverloadStaysTyped(t *testing.T) {
	base := runtime.NumGoroutine()
	ev := testEvolve(t, 2)
	srv := newTestServer(t, ev, Config{Workers: 1, QueueDepth: 2})

	rep, err := RunLoad(context.Background(), srv, ev, LoadConfig{
		Sessions:          24,
		Requests:          8,
		QueriesPerRequest: 2,
		Deadline:          250 * time.Millisecond,
		WarmBias:          0.3,
		Verify:            true,
		Seed:              7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %v", v)
	}
	if rep.Completed == 0 {
		t.Error("overloaded server completed nothing")
	}
	if rep.Shed+rep.Expired == 0 {
		t.Error("2x-capacity load produced no shed/expired refusals; overload path untested")
	}
	if rep.Completed > 0 && rep.Verified == 0 && rep.VerifySkipped == 0 {
		t.Error("completed requests but nothing verified or skipped")
	}
	t.Logf("overload: issued=%d completed=%d shed=%d expired=%d verified=%d",
		rep.Issued, rep.Completed, rep.Shed, rep.Expired, rep.Verified)

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	goroutineStable(t, base)
}

package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// The serve layer's error taxonomy is small, closed, and — like the
// engine's (DESIGN.md §12) — split into two classes by the reaction they
// demand (DESIGN.md §14):
//
//   - back off and retry: *OverloadError (queue full, or the server is
//     draining), *QuotaError (tenant bucket empty), *ExpiredError (the
//     request's deadline passed before it ran). The server is healthy;
//     the request was refused to keep it that way. Nothing was partially
//     executed.
//   - caller or operator bug: *UnknownSessionError (bad session ID),
//     *PanicError (a panic crossed a serve-layer boundary; the engine's
//     own quarantine already contained it, the wrapper records where).
//
// Every refused request carries exactly one of these — the overload
// tests assert there is no third, untyped way to be turned away.

// ErrNotRunning is reported by lifecycle operations (Drain on an
// already-draining server, admission after close) that need no richer
// context than "the server is past that state".
var ErrNotRunning = errors.New("serve: server is not running")

// OverloadError is the shed signal: the request was refused at admission
// because its lane's bounded queue is full, or because the server is
// draining and admits nothing new. The queue numbers are a point-in-time
// observation for operator logs; clients should back off and retry.
type OverloadError struct {
	Lane     Lane
	QueueLen int
	QueueCap int
	Draining bool
}

func (e *OverloadError) Error() string {
	if e.Draining {
		return "serve: overloaded: server is draining, admission closed"
	}
	return fmt.Sprintf("serve: overloaded: %s lane queue full (%d/%d)", e.Lane, e.QueueLen, e.QueueCap)
}

// QuotaError reports an admission refused by the tenant's token bucket.
// RetryAfter estimates when one token will have refilled.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("serve: tenant %q over quota (retry after %v)", e.Tenant, e.RetryAfter)
}

// ExpiredError reports a request whose deadline passed while it was
// still queued (or before its worker picked it up): it was admitted but
// never traversed an edge. Waited is how long it sat in the queue.
type ExpiredError struct {
	Lane   Lane
	Waited time.Duration
}

func (e *ExpiredError) Error() string {
	return fmt.Sprintf("serve: deadline expired after %v queued in %s lane", e.Waited, e.Lane)
}

// UnknownSessionError reports a request naming a session the registry
// does not hold.
type UnknownSessionError struct{ ID string }

func (e *UnknownSessionError) Error() string {
	return fmt.Sprintf("serve: unknown session %q", e.ID)
}

// DuplicateSessionError reports CreateSession with an ID already in use.
type DuplicateSessionError struct{ ID string }

func (e *DuplicateSessionError) Error() string {
	return fmt.Sprintf("serve: session %q already exists", e.ID)
}

// PanicError reports a panic recovered at a serve-layer boundary
// (admission, dispatch, session apply, drain persistence). Value is the
// original panic value — exposed to errors.As/Is when it is itself an
// error, e.g. an injected *faultinject.Fault — and Stack the goroutine
// stack captured at recovery. The engine-level quarantine guarantees
// (DESIGN.md §12) already hold by the time this wrapper exists; it adds
// which serving stage the panic crossed, so one quarantined slot is
// attributable without correlating logs.
type PanicError struct {
	Stage string // "admit", "dispatch", "run", "apply", "drain"
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: panic at %s boundary: %v", e.Stage, e.Value)
}

// Unwrap exposes panic values that are themselves errors.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

func newPanicError(stage string, value any) *PanicError {
	return &PanicError{Stage: stage, Value: value, Stack: debug.Stack()}
}

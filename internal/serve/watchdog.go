package serve

import (
	"context"
	"sync"
	"time"
)

// The deadline watchdog: every admitted request is tracked from the
// moment it enters its lane queue, and armed with a cancel function once
// a worker starts its traversal. A single ticker goroutine scans the set
// and acts on whatever is overdue:
//
//   - still queued (no cancel yet): complete it directly with a typed
//     *ExpiredError, so the caller gets its refusal at the deadline even
//     if every worker is busy — the dispatcher later skips the tombstone;
//   - running: cancel its context with cause context.DeadlineExceeded.
//     The engine's Budget polls the context every few hundred traversal
//     steps, so cancellation is cooperative and prompt, and the query's
//     slot comes back as a partial ErrCanceled result for which
//     errors.Is(err, context.DeadlineExceeded) holds.
//
// No timer goroutine per request, no killed worker, and the engine (plus
// the session's other queries) is untouched.

type inflightEntry struct {
	cancel   context.CancelCauseFunc // nil while the request is queued
	deadline time.Time
	lane     Lane
	canceled bool
}

type inflightSet struct {
	mu sync.Mutex
	m  map[*request]*inflightEntry
}

// track registers an admitted request. A request that already completed
// (the pipeline can win the race with admission's bookkeeping) is not
// inserted — complete() has already run its untrack, and inserting after
// it would leak the entry.
func (in *inflightSet) track(r *request) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r.completed.Load() {
		return
	}
	in.m[r] = &inflightEntry{deadline: r.deadline, lane: r.lane}
}

// arm attaches the running request's cancel function, switching the
// watchdog's overdue action from expire-in-queue to cancel-traversal.
func (in *inflightSet) arm(r *request, cancel context.CancelCauseFunc) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if e, ok := in.m[r]; ok {
		e.cancel = cancel
	}
}

func (in *inflightSet) untrack(r *request) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.m, r)
}

// cancelAll cancels every armed in-flight request with the given cause —
// the drain-deadline path. Queued requests are left to the dispatcher,
// which refuses them once the drain is aborted.
func (in *inflightSet) cancelAll(cause error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, e := range in.m {
		if e.cancel != nil && !e.canceled {
			e.cancel(cause)
			e.canceled = true
		}
	}
}

// expireOverdue is one watchdog scan. Cancellations happen under the set
// lock (they are atomic flag flips); expirations complete requests, so
// they are collected first and resolved outside it (complete() untracks,
// which needs the same lock).
func (s *Server) expireOverdue(now time.Time) {
	var stale []*request
	s.inflight.mu.Lock()
	for r, e := range s.inflight.m {
		if e.canceled || e.deadline.IsZero() || !now.After(e.deadline) {
			continue
		}
		e.canceled = true
		if e.cancel != nil {
			e.cancel(context.DeadlineExceeded)
			s.metrics.lanes[e.lane].deadlineCancels.Add(1)
		} else {
			stale = append(stale, r)
		}
	}
	s.inflight.mu.Unlock()
	for _, r := range stale {
		if s.complete(r, nil, &ExpiredError{Lane: r.lane, Waited: now.Sub(r.enqueued)}) {
			s.metrics.lanes[r.lane].expired.Add(1)
		}
	}
}

func (s *Server) watchdog() {
	defer s.watchWG.Done()
	t := time.NewTicker(s.cfg.WatchdogInterval)
	defer t.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-t.C:
			s.expireOverdue(s.now())
		}
	}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dynsum/internal/benchgen"
	"dynsum/internal/core"
	"dynsum/internal/intstack"
)

// The load generator replays a benchgen evolve workload through the
// serving core: many concurrent sessions, each privately re-living the
// same wave sequence over the shared base, issuing deref-site query
// batches between waves. It is the package's proof harness — the
// overload, chaos, and bench suites all drive the server through it —
// so it enforces the serving contract as it goes:
//
//   - every refusal must be one of the typed admission errors; anything
//     else is recorded as a protocol violation in Report.Violations;
//   - with Verify set, every completed query result is checked
//     byte-identical (PointsToSet.Equal, shared context table) against a
//     direct oracle engine built over the same wave prefix the session
//     had applied when the request ran.
//
// Each session's requests are issued by one goroutine, so a session
// never has a query in flight while it applies its next wave — every
// request runs entirely within one epoch, which is what makes the
// per-epoch oracle comparison exact.

// LoadConfig shapes one load run.
type LoadConfig struct {
	// Sessions is the number of concurrent tenant sessions.
	Sessions int
	// Requests is the per-session request count.
	Requests int
	// QueriesPerRequest sizes each batch.
	QueriesPerRequest int
	// ApplyEvery applies the next evolve wave after this many requests
	// (0 disables evolution: sessions stay on the base forever).
	ApplyEvery int
	// Deadline is attached to every request; 0 means none.
	Deadline time.Duration
	// Tenants, when set, assigns tenants round-robin across sessions;
	// empty gives every session its own tenant.
	Tenants []string
	// WarmBias is the probability (0..1) that a query revisits a variable
	// the session already queried — the knob that produces cheap-lane
	// traffic once summaries are cached.
	WarmBias float64
	// Verify checks every completed result against a per-epoch oracle.
	Verify bool
	// Seed makes the run reproducible.
	Seed int64
}

// LaneStats aggregates one lane's outcomes across the run.
type LaneStats struct {
	Completed int
	Shed      int
	Expired   int
	P50       time.Duration
	P99       time.Duration
	// ShedRate is Shed / (Shed + Completed + Expired).
	ShedRate float64
}

// Report is the outcome of one load run.
type Report struct {
	Sessions int
	Issued   int
	// Refusal tallies by type; Completed counts requests that returned a
	// Response (whose individual queries may still carry engine errors).
	Completed    int
	Shed         int
	Expired      int
	QuotaDenied  int
	PanicRefused int
	Canceled     int
	// ApplyRefused counts wave applies refused with a typed error (an
	// injected apply fault, or draining); the session stays on its epoch
	// and keeps serving.
	ApplyRefused int

	// Verified counts oracle-checked query results; VerifySkipped those
	// the oracle could not complete (budget) or that the engine aborted.
	Verified     int
	VerifySkipped int

	Lanes map[string]*LaneStats

	// Violations are refusals outside the typed taxonomy — always a bug.
	Violations []error
}

type loadState struct {
	cfg LoadConfig
	srv *Server
	ev  *benchgen.EvolveProgram

	mu        sync.Mutex
	latencies [numLanes][]time.Duration
	report    Report

	oracleMu sync.Mutex
	oracles  map[uint64]*core.DynSum
}

// RunLoad drives srv with cfg.Sessions concurrent sessions replaying
// ev's waves, until every session has issued cfg.Requests requests or
// ctx is done. srv must have been built over ev.Base. The returned
// Report is complete even on early cancellation (counts reflect what
// actually ran).
func RunLoad(ctx context.Context, srv *Server, ev *benchgen.EvolveProgram, cfg LoadConfig) (*Report, error) {
	if cfg.Sessions <= 0 || cfg.Requests <= 0 {
		return nil, errors.New("serve: load config needs Sessions and Requests")
	}
	if cfg.QueriesPerRequest <= 0 {
		cfg.QueriesPerRequest = 4
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st := &loadState{cfg: cfg, srv: srv, ev: ev, oracles: make(map[uint64]*core.DynSum)}
	st.report.Sessions = cfg.Sessions
	st.report.Lanes = map[string]*LaneStats{}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if len(cfg.Tenants) > 0 {
			tenant = cfg.Tenants[i%len(cfg.Tenants)]
		}
		sess, err := srv.CreateSession(fmt.Sprintf("load-%d", i), tenant)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			st.driveSession(ctx, i, sess)
		}(i, sess)
	}
	wg.Wait()

	for lane := 0; lane < numLanes; lane++ {
		ls := &LaneStats{}
		st.mu.Lock()
		lat := st.latencies[lane]
		st.mu.Unlock()
		ls.Completed = len(lat)
		ls.P50, ls.P99 = percentiles(lat)
		st.report.Lanes[Lane(lane).String()] = ls
	}
	// Shed/expired per lane come from the server's own counters, which
	// include exactly this run when the caller built a fresh server.
	snap := srv.MetricsSnapshot()
	for name, ls := range st.report.Lanes {
		lc := snap.Lanes[name]
		ls.Shed = int(lc.Shed)
		ls.Expired = int(lc.Expired)
		if total := ls.Shed + ls.Completed + ls.Expired; total > 0 {
			ls.ShedRate = float64(ls.Shed) / float64(total)
		}
	}
	return &st.report, nil
}

func (st *loadState) driveSession(ctx context.Context, idx int, sess *Session) {
	rng := rand.New(rand.NewSource(st.cfg.Seed + int64(idx)*7919))
	var queried []core.Query // session's query history, feeds WarmBias
	for n := 0; n < st.cfg.Requests; n++ {
		if ctx.Err() != nil {
			return
		}
		if st.cfg.ApplyEvery > 0 && n > 0 && n%st.cfg.ApplyEvery == 0 {
			// This goroutine is the session's only client, and Do has
			// returned for every prior request: zero in-flight queries, so
			// the apply is ordered exactly as the quiescence contract asks.
			if int(sess.Epoch())+1 < st.ev.NumWaves() {
				if err := st.applyNextWave(ctx, sess); err != nil {
					// A typed refusal (injected apply fault, draining) is a
					// legitimate outcome: the apply never touched the overlay,
					// so the session keeps serving on its current epoch. Only
					// untyped errors are protocol violations.
					var pe *PanicError
					var oe *OverloadError
					if errors.As(err, &pe) || errors.As(err, &oe) {
						st.mu.Lock()
						st.report.ApplyRefused++
						st.mu.Unlock()
					} else {
						st.violation(fmt.Errorf("session %s wave apply: %w", sess.ID, err))
						return
					}
				}
			}
		}
		epoch := sess.Epoch()
		queries := st.pickQueries(rng, int(epoch), queried)
		queried = append(queried, queries...)

		start := time.Now()
		resp, err := st.srv.Do(ctx, Request{
			Session:  sess.ID,
			Queries:  queries,
			Deadline: st.cfg.Deadline,
		})
		elapsed := time.Since(start)
		st.record(resp, err, elapsed)
		if resp != nil && st.cfg.Verify {
			st.verify(sess, epoch, resp)
		}
	}
}

func (st *loadState) applyNextWave(ctx context.Context, sess *Session) error {
	log, err := sess.Engine().NewDeltaLog()
	if err != nil {
		return err
	}
	if err := st.ev.WaveLog(log, int(sess.Epoch())+1); err != nil {
		return err
	}
	_, err = st.srv.Apply(ctx, sess.ID, log)
	return err
}

// pickQueries draws a batch from the deref sites installed through the
// session's current wave prefix, revisiting past queries with
// probability WarmBias.
func (st *loadState) pickQueries(rng *rand.Rand, epoch int, history []core.Query) []core.Query {
	derefs := st.ev.DerefsThrough(epoch)
	out := make([]core.Query, 0, st.cfg.QueriesPerRequest)
	for len(out) < st.cfg.QueriesPerRequest {
		if len(history) > 0 && rng.Float64() < st.cfg.WarmBias {
			out = append(out, history[rng.Intn(len(history))])
			continue
		}
		if len(derefs) == 0 {
			break
		}
		out = append(out, core.Query{Var: derefs[rng.Intn(len(derefs))].Var, Ctx: intstack.Empty})
	}
	return out
}

func (st *loadState) record(resp *Response, err error, elapsed time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.report.Issued++
	if err == nil {
		st.report.Completed++
		st.latencies[resp.Lane] = append(st.latencies[resp.Lane], elapsed)
		return
	}
	var (
		oe *OverloadError
		qe *QuotaError
		ee *ExpiredError
		ue *UnknownSessionError
		pe *PanicError
	)
	switch {
	case errors.As(err, &oe):
		st.report.Shed++
	case errors.As(err, &qe):
		st.report.QuotaDenied++
	case errors.As(err, &ee):
		st.report.Expired++
	case errors.As(err, &pe):
		st.report.PanicRefused++
	case errors.As(err, &ue):
		st.report.Violations = append(st.report.Violations, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		st.report.Canceled++
	default:
		st.report.Violations = append(st.report.Violations, err)
	}
}

func (st *loadState) violation(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.report.Violations = append(st.report.Violations, err)
}

// oracle returns the shared direct engine for one wave prefix, built on
// demand over a fresh BuildPrefix program but sharing the server's
// context table so points-to sets compare exactly.
func (st *loadState) oracle(epoch uint64) (*core.DynSum, error) {
	st.oracleMu.Lock()
	defer st.oracleMu.Unlock()
	if d, ok := st.oracles[epoch]; ok {
		return d, nil
	}
	prog, err := st.ev.BuildPrefix(int(epoch))
	if err != nil {
		return nil, err
	}
	d := core.NewDynSum(prog.G, st.srv.cfg.Engine, st.srv.Ctxs())
	st.oracles[epoch] = d
	return d, nil
}

// verify checks every completed query in resp against the epoch's
// oracle. The oracle serialises its own queries under oracleMu (one
// engine, many loadgen goroutines).
func (st *loadState) verify(sess *Session, epoch uint64, resp *Response) {
	d, err := st.oracle(epoch)
	if err != nil {
		st.violation(fmt.Errorf("oracle for epoch %d: %w", epoch, err))
		return
	}
	for _, r := range resp.Results {
		if r.Err != nil {
			st.mu.Lock()
			st.report.VerifySkipped++
			st.mu.Unlock()
			continue
		}
		st.oracleMu.Lock()
		want, werr := d.PointsToCtx(r.Var, r.Ctx)
		st.oracleMu.Unlock()
		if werr != nil {
			// The cold oracle ran out of budget where the warm session
			// completed — the known schedule-dependent edge; skip.
			st.mu.Lock()
			st.report.VerifySkipped++
			st.mu.Unlock()
			continue
		}
		if !r.Pts.Equal(want) {
			st.violation(fmt.Errorf("session %s epoch %d var %d: served answer diverges from oracle", sess.ID, epoch, r.Var))
			continue
		}
		st.mu.Lock()
		st.report.Verified++
		st.mu.Unlock()
	}
}

func percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*50/100], s[min(len(s)*99/100, len(s)-1)]
}

// Package serve is the overload-safe multi-tenant serving core
// (DESIGN.md §14): a session registry where every tenant session holds a
// private delta overlay over one shared frozen base graph, fronted by
// bounded admission queues that shed excess load with typed errors
// instead of blocking.
//
// The flow of one request: admission (state check → session lookup →
// tenant quota → lane classification → bounded enqueue-or-shed), then a
// per-lane dispatcher hands it to a worker, which runs the batch under
// the session's read lock with a cancellable context; a watchdog cancels
// requests that outlive their deadline. Nothing on the admission or
// dispatch path ever blocks on engine work, so the server's response to
// overload is a fast *OverloadError, never queue growth or a stalled
// caller.
//
// Graceful drain: Drain stops admission, lets queued and in-flight work
// finish under a deadline (cancelling cooperatively past it), then
// persists every dirty session via persist.SaveReplay — base snapshot
// plus the session's delta journal — so a drained process restarts with
// every tenant's state recoverable through the ordinary persist.Open
// path.
package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dynsum/internal/core"
	"dynsum/internal/delta"
	"dynsum/internal/faultinject"
	"dynsum/internal/intstack"
	"dynsum/internal/pag"
	"dynsum/internal/persist"
)

// Config sizes the server. The zero value gets usable defaults (two
// workers and a 64-deep queue per lane, 2ms watchdog resolution, no
// quotas, no default deadline, no persistence).
type Config struct {
	// Workers is the worker-goroutine count per lane.
	Workers int
	// QueueDepth bounds each lane's admission queue; an admission finding
	// the queue full sheds with *OverloadError.
	QueueDepth int
	// Quota is the per-tenant token bucket; zero disables quotas.
	Quota QuotaConfig
	// DefaultDeadline applies to requests that carry none; 0 means no
	// deadline.
	DefaultDeadline time.Duration
	// WatchdogInterval is the deadline-scan resolution (default 2ms).
	WatchdogInterval time.Duration
	// StateDir, when set, is where Drain persists dirty sessions (one
	// subdirectory per session ID).
	StateDir string
	// Engine configures every session's core.DynSum.
	Engine core.Config
	// Prepare, when set, runs on every new session engine before it serves
	// queries — the hook dynsumd uses to enable open-world mode and apply
	// library specs. A Prepare error fails the session's creation.
	Prepare func(*core.DynSum) error
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = 2 * time.Millisecond
	}
	return c
}

// Request is one admission candidate: a session's batch of points-to
// queries, charged to a tenant, with an optional deadline relative to
// admission time.
type Request struct {
	Session string
	// Tenant overrides the session's tenant for quota accounting; empty
	// uses the session's.
	Tenant  string
	Queries []core.Query
	// Deadline, when positive, bounds the request from admission to
	// completion; 0 falls back to Config.DefaultDeadline.
	Deadline time.Duration
}

// Response is a completed (admitted and run) request. Results are
// positionally aligned with the request's queries and may individually
// carry engine errors (budget exhaustion, cancellation, quarantined
// panics) — request-level refusals arrive as Do's error instead.
type Response struct {
	Results []core.Result
	Lane    Lane
	Queued  time.Duration // admission to worker pickup
	Ran     time.Duration // worker pickup to completion
}

type request struct {
	sess     *Session
	tenant   string
	queries  []core.Query
	lane     Lane
	ctx      context.Context
	deadline time.Time // zero = none
	enqueued time.Time

	// completed makes completion single-winner: the worker, the
	// dispatcher, and the watchdog (expiring an overdue queued request)
	// can all try to complete; exactly one CAS succeeds.
	completed atomic.Bool
	done      chan struct{}
	resp      *Response
	err       error
}

type lane struct {
	id    Lane
	queue chan *request
	work  chan *request
}

const (
	stateRunning int32 = iota
	stateDraining
	stateClosed
)

// Server is the serving core. Create with NewServer, stop with Drain.
type Server struct {
	cfg     Config
	base    *pag.Program
	ctxs    *intstack.Table
	quotas  *quotas
	metrics serveMetrics

	// admitMu is the admission/lifecycle gate: every producer into a lane
	// queue holds it for reading across the state check and the enqueue,
	// and Drain holds it for writing only to flip the state. That pairing
	// is what makes closing the queues safe — once Drain has the write
	// lock, no producer can be between "state is running" and its send.
	admitMu sync.RWMutex
	state   atomic.Int32
	// aborted flips when the drain deadline expires: dispatchers stop
	// handing work to workers and complete queued requests with a typed
	// draining *OverloadError instead.
	aborted atomic.Bool

	lanes [numLanes]*lane

	sessMu   sync.RWMutex
	sessions map[string]*Session

	inflight  inflightSet
	watchStop chan struct{}
	watchWG   sync.WaitGroup
	wg        sync.WaitGroup // dispatchers + workers

	// now is the clock, swappable in tests (quota refill, deadlines).
	now func() time.Time
}

// NewServer starts a server over the frozen base program: per-lane
// dispatchers and worker pools plus the deadline watchdog. base.G must
// be frozen (sessions lay delta overlays over it; it is never written).
// Every session shares one context-stack table, so points-to sets from
// different sessions — and from oracle engines built with Ctxs() — are
// directly comparable.
func NewServer(base *pag.Program, cfg Config) (*Server, error) {
	if base == nil || base.G == nil {
		return nil, errors.New("serve: nil base program")
	}
	if !base.G.Frozen() {
		return nil, errors.New("serve: base program must be frozen")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		base:      base,
		ctxs:      new(intstack.Table),
		quotas:    newQuotas(cfg.Quota),
		sessions:  make(map[string]*Session),
		watchStop: make(chan struct{}),
		now:       time.Now,
	}
	s.inflight.m = make(map[*request]*inflightEntry)
	for i := range s.lanes {
		l := &lane{
			id:    Lane(i),
			queue: make(chan *request, cfg.QueueDepth),
			work:  make(chan *request),
		}
		s.lanes[i] = l
		s.wg.Add(1 + cfg.Workers)
		go s.dispatch(l)
		for w := 0; w < cfg.Workers; w++ {
			go s.worker(l)
		}
	}
	s.watchWG.Add(1)
	go s.watchdog()
	return s, nil
}

// Ctxs returns the context-stack table shared by every session's engine;
// oracle engines built with it produce directly comparable points-to
// sets (core.PointsToSet.Equal).
func (s *Server) Ctxs() *intstack.Table { return s.ctxs }

// Ready reports whether the server admits requests — the /readyz signal.
func (s *Server) Ready() bool { return s.state.Load() == stateRunning }

// Draining reports a drain in progress or completed.
func (s *Server) Draining() bool { return s.state.Load() != stateRunning }

// CreateSession registers a new session for tenant over the shared base.
func (s *Server) CreateSession(id, tenant string) (*Session, error) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.state.Load() != stateRunning {
		return nil, ErrNotRunning
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if _, ok := s.sessions[id]; ok {
		return nil, &DuplicateSessionError{ID: id}
	}
	sess := &Session{
		ID:     id,
		Tenant: tenant,
		eng:    core.NewDynSum(s.base.G, s.cfg.Engine, s.ctxs),
	}
	if s.cfg.Prepare != nil {
		if err := s.cfg.Prepare(sess.eng); err != nil {
			return nil, fmt.Errorf("serve: prepare session %s: %w", id, err)
		}
	}
	s.sessions[id] = sess
	return sess, nil
}

// Session returns the registered session, or nil.
func (s *Server) Session(id string) *Session {
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	return s.sessions[id]
}

// Sessions returns a snapshot of all registered sessions.
func (s *Server) Sessions() []*Session {
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// Do admits and runs one request, blocking until it completes, is
// refused, or ctx is done. Refusals are always typed: *OverloadError
// (lane queue full, or draining), *QuotaError, *UnknownSessionError,
// *ExpiredError (deadline passed while queued), *PanicError (a fault
// crossed a serve boundary). A ctx cancellation abandons the wait — the
// server still completes the request internally (no goroutine or slot
// leaks), the caller just stops listening.
func (s *Server) Do(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r, err := s.admit(ctx, req)
	if err != nil {
		return nil, err
	}
	select {
	case <-r.done:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// admit performs the full admission pipeline and either enqueues the
// request or returns the typed refusal. It never blocks: the enqueue is
// a non-blocking send, and everything before it is lock arithmetic.
func (s *Server) admit(ctx context.Context, req Request) (r *request, err error) {
	defer func() {
		if v := recover(); v != nil {
			r, err = nil, asPanicError("admit", v)
		}
	}()
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.state.Load() != stateRunning {
		return nil, &OverloadError{Draining: true}
	}
	sess := s.Session(req.Session)
	if sess == nil {
		return nil, &UnknownSessionError{ID: req.Session}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = sess.Tenant
	}
	now := s.now()
	if ok, retry := s.quotas.allow(tenant, now); !ok {
		s.metrics.tenant(tenant, func(tc *TenantCounters) { tc.QuotaRejected++ })
		return nil, &QuotaError{Tenant: tenant, RetryAfter: retry}
	}
	laneID := s.classify(sess, req.Queries)
	l := s.lanes[laneID]
	faultinject.Fire(faultinject.ServeAdmit)
	r = &request{
		sess:     sess,
		tenant:   tenant,
		queries:  req.Queries,
		lane:     laneID,
		ctx:      ctx,
		enqueued: now,
		done:     make(chan struct{}),
	}
	if d := req.Deadline; d > 0 {
		r.deadline = now.Add(d)
	} else if s.cfg.DefaultDeadline > 0 {
		r.deadline = now.Add(s.cfg.DefaultDeadline)
	}
	select {
	case l.queue <- r:
		// Tracked from admission, not first traversal, so the watchdog can
		// expire a request whose deadline passes while it is still queued —
		// the caller gets its typed *ExpiredError at the deadline, not
		// whenever a worker finally frees up.
		s.inflight.track(r)
		s.metrics.lanes[laneID].admitted.Add(1)
		s.metrics.tenant(tenant, func(tc *TenantCounters) { tc.Admitted++ })
		return r, nil
	default:
		s.metrics.lanes[laneID].shed.Add(1)
		s.metrics.tenant(tenant, func(tc *TenantCounters) { tc.Shed++ })
		return nil, &OverloadError{Lane: laneID, QueueLen: len(l.queue), QueueCap: cap(l.queue)}
	}
}

// classify probes the session's summary cache for every queried
// variable: an all-warm footprint is cheap, anything else a whale. The
// probe runs under the session read lock, ordered against that session's
// mutators exactly like a query.
func (s *Server) classify(sess *Session, queries []core.Query) Lane {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	for _, q := range queries {
		if !sess.eng.SummaryCached(q.Var) {
			return LaneWhale
		}
	}
	return LaneCheap
}

// dispatch moves one lane's admissions to its workers. During an aborted
// drain it completes queued requests with a typed draining refusal
// instead, so the queue always empties and close(work) is reached.
func (s *Server) dispatch(l *lane) {
	defer s.wg.Done()
	defer close(l.work)
	for r := range l.queue {
		if r.completed.Load() {
			continue // expired in the queue; its caller already has the error
		}
		if s.aborted.Load() {
			if s.complete(r, nil, &OverloadError{Lane: l.id, Draining: true}) {
				s.metrics.lanes[l.id].shed.Add(1)
			}
			continue
		}
		if err := s.fireDispatch(); err != nil {
			s.complete(r, nil, err)
			continue
		}
		l.work <- r
	}
}

// fireDispatch is the dispatcher's fault boundary: an injected panic at
// the dispatch point becomes a typed refusal for the one request in
// hand, never a dead dispatcher.
func (s *Server) fireDispatch() (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = asPanicError("dispatch", v)
		}
	}()
	faultinject.Fire(faultinject.ServeDispatch)
	return nil
}

func (s *Server) worker(l *lane) {
	defer s.wg.Done()
	for r := range l.work {
		s.run(l, r)
	}
}

// run executes one admitted request: expiry check, watchdog
// registration, then the batch under the session read lock with a
// cancellable context (the watchdog cancels it at the deadline; the
// engine aborts cooperatively within one budget poll interval).
func (s *Server) run(l *lane, r *request) {
	defer func() {
		if v := recover(); v != nil {
			s.complete(r, nil, asPanicError("run", v))
		}
	}()
	if r.completed.Load() {
		return // expired in the queue between dispatch and pickup
	}
	lc := &s.metrics.lanes[l.id]
	now := s.now()
	expired := r.ctx.Err() != nil || // caller abandoned the wait while queued
		(!r.deadline.IsZero() && now.After(r.deadline))
	if expired {
		if s.complete(r, nil, &ExpiredError{Lane: l.id, Waited: now.Sub(r.enqueued)}) {
			lc.expired.Add(1)
		}
		return
	}
	ctx, cancel := context.WithCancelCause(r.ctx)
	s.inflight.arm(r, cancel)
	started := s.now()
	r.sess.mu.RLock()
	results := r.sess.eng.BatchPointsToCtx(ctx, r.queries, 1)
	r.sess.mu.RUnlock()
	cancel(nil)
	ok := s.complete(r, &Response{
		Results: results,
		Lane:    l.id,
		Queued:  started.Sub(r.enqueued),
		Ran:     s.now().Sub(started),
	}, nil)
	if !ok {
		return
	}
	lc.completed.Add(1)
	if s.Draining() {
		lc.drained.Add(1)
	}
	for i := range results {
		var qp *core.QueryPanicError
		if errors.As(results[i].Err, &qp) {
			lc.quarantined.Add(1)
		}
	}
}

// complete resolves a request exactly once, whoever gets there first,
// and reports whether this call was the winner (the winner also owns the
// outcome's metrics).
func (s *Server) complete(r *request, resp *Response, err error) bool {
	if !r.completed.CompareAndSwap(false, true) {
		return false
	}
	s.inflight.untrack(r)
	r.resp, r.err = resp, err
	close(r.done)
	return true
}

// Apply applies one delta epoch to a session, serialised against that
// session's in-flight queries (and only that session's). The log's wire
// encoding is captured first, so a successful apply leaves the session's
// replay history complete for drain persistence. A panic during apply —
// injected or real — surfaces as a typed *PanicError; the engine's own
// mutator quarantine has already kept the overlay consistent or marked
// the session broken (core.MutatorPanicError semantics).
func (s *Server) Apply(ctx context.Context, sessionID string, log *delta.Log) (res core.DeltaResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = core.DeltaResult{}, asPanicError("apply", v)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if s.state.Load() != stateRunning {
		return res, &OverloadError{Draining: true}
	}
	sess := s.Session(sessionID)
	if sess == nil {
		return res, &UnknownSessionError{ID: sessionID}
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	payload := log.AppendBinary(nil)
	faultinject.Fire(faultinject.ServeSessionApply)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	res, err = sess.eng.ApplyDelta(log)
	if err == nil {
		sess.payloads = append(sess.payloads, payload)
		sess.epoch.Add(1)
	}
	return res, err
}

// Drain gracefully stops the server: admission closes immediately (new
// requests get a typed draining *OverloadError), queued and in-flight
// requests run to completion while ctx lasts, then anything still
// running is cancelled cooperatively and anything still queued refused —
// either way every accepted request completes and every worker exits.
// Finally each dirty session is persisted to Config.StateDir (when set)
// as a base snapshot plus delta journal, recoverable with persist.Open.
// Per-session persistence failures are collected (errors.Join), never
// allowed to stop the other sessions. Drain returns ErrNotRunning if the
// server is already draining or closed.
func (s *Server) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.admitMu.Lock()
	if !s.state.CompareAndSwap(stateRunning, stateDraining) {
		s.admitMu.Unlock()
		return ErrNotRunning
	}
	s.admitMu.Unlock()
	// No producer can now be mid-send (admission holds admitMu for
	// reading across state check + send, and sees stateDraining), so
	// closing the queues is safe.
	for _, l := range s.lanes {
		close(l.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: flip dispatchers to refusal mode and cancel every
		// in-flight traversal; the engine aborts cooperatively, so the
		// pipeline drains promptly.
		s.aborted.Store(true)
		s.inflight.cancelAll(context.Cause(ctx))
		<-done
	}
	close(s.watchStop)
	s.watchWG.Wait()
	err := s.persistDirty()
	s.state.Store(stateClosed)
	return err
}

func (s *Server) persistDirty() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	var errs []error
	for _, sess := range s.Sessions() {
		if sess.Epoch() == 0 {
			continue // clean: still the shared base, nothing to persist
		}
		if err := s.persistSession(sess); err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", sess.ID, err))
		}
	}
	return errors.Join(errs...)
}

// PersistSession persists one session's state immediately — the retry
// path when Drain reported a per-session persistence failure (e.g. an
// injected drain fault), and usable for snapshotting a session while the
// server runs. Caller-visible state: the session directory under
// StateDir is rewritten whole.
func (s *Server) PersistSession(id string) error {
	if s.cfg.StateDir == "" {
		return errors.New("serve: no StateDir configured")
	}
	sess := s.Session(id)
	if sess == nil {
		return &UnknownSessionError{ID: id}
	}
	return s.persistSession(sess)
}

func (s *Server) persistSession(sess *Session) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = asPanicError("drain", v)
		}
	}()
	faultinject.Fire(faultinject.ServeDrain)
	sess.mu.RLock()
	payloads := sess.payloads
	sess.mu.RUnlock()
	return persist.SaveReplay(filepath.Join(s.cfg.StateDir, sess.ID), s.base, payloads)
}

// MetricsSnapshot returns the serving counters plus engine metrics
// summed over every session — the /metrics payload.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Ready: s.Ready(),
		Lanes: make(map[string]LaneCounters, numLanes),
	}
	for i := range s.metrics.lanes {
		snap.Lanes[Lane(i).String()] = s.metrics.lanes[i].snapshot()
	}
	s.metrics.mu.Lock()
	snap.Tenants = make(map[string]TenantCounters, len(s.metrics.tenants))
	for name, tc := range s.metrics.tenants {
		snap.Tenants[name] = *tc
	}
	s.metrics.mu.Unlock()
	sessions := s.Sessions()
	snap.Sessions = len(sessions)
	for _, sess := range sessions {
		snap.Engine.Add(sess.eng.Metrics().Snapshot())
	}
	return snap
}

func asPanicError(stage string, v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return newPanicError(stage, v)
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"dynsum/internal/faultinject"
	"dynsum/internal/persist"
)

// The serve chaos sweep: inject a panic at each serving-layer fault
// point — admission, dispatch, session apply, drain persistence — while
// a verified load runs, and assert the blast radius every time:
//
//   - the faulted request (or apply, or persist) is refused with a typed
//     *PanicError; nothing else notices;
//   - every admitted answer stays oracle-identical (loadgen Verify);
//   - every session's engine passes CheckIntegrity afterward;
//   - the server drains cleanly with zero goroutine leaks;
//   - a session whose drain-time persistence was faulted is still fully
//     recoverable: the PersistSession retry succeeds and persist.Open
//     round-trips it.
//
// The active faultinject schedule is process-global, so these loops run
// strictly sequentially (no t.Parallel anywhere in the package).

func runChaosCase(t *testing.T, point faultinject.Point, nth int64) {
	t.Helper()
	base := runtime.NumGoroutine()
	ev := testEvolve(t, 3)
	stateDir := t.TempDir()
	srv := newTestServer(t, ev, Config{Workers: 2, QueueDepth: 16, StateDir: stateDir})

	sched := faultinject.NewSchedule()
	sched.Arm(point, nth)
	faultinject.Activate(sched)
	defer faultinject.Deactivate()

	rep, err := RunLoad(context.Background(), srv, ev, LoadConfig{
		Sessions:          8,
		Requests:          6,
		QueriesPerRequest: 2,
		ApplyEvery:        3,
		WarmBias:          0.4,
		Verify:            true,
		Seed:              int64(point)*1000 + nth,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("%v at arrival %d: violation: %v", point, nth, v)
	}
	if rep.Completed == 0 {
		t.Errorf("%v at arrival %d: nothing completed", point, nth)
	}
	fired := sched.Arrivals(point) >= nth
	if fired && point != faultinject.ServeDrain {
		if rep.PanicRefused+rep.ApplyRefused == 0 {
			t.Errorf("%v at arrival %d fired but no typed panic refusal surfaced", point, nth)
		}
	}

	// Every session must still be structurally sound, faulted or not.
	for _, sess := range srv.Sessions() {
		if err := sess.Engine().CheckIntegrity(); err != nil {
			t.Errorf("%v at arrival %d: session %s integrity: %v", point, nth, sess.ID, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainErr := srv.Drain(ctx)
	var dirty []*Session
	for _, sess := range srv.Sessions() {
		if sess.Epoch() > 0 {
			dirty = append(dirty, sess)
		}
	}
	if point == faultinject.ServeDrain && sched.Arrivals(point) >= nth {
		// The injected drain fault must surface as a typed per-session
		// error, and the session must remain recoverable by retry.
		var pe *PanicError
		if !errors.As(drainErr, &pe) {
			t.Fatalf("drain fault fired but Drain error = %v, want wrapped *PanicError", drainErr)
		}
		faultinject.Deactivate()
		for _, sess := range dirty {
			if err := srv.PersistSession(sess.ID); err != nil {
				t.Fatalf("PersistSession retry for %s: %v", sess.ID, err)
			}
		}
	} else if drainErr != nil {
		t.Fatalf("%v at arrival %d: Drain: %v", point, nth, drainErr)
	}
	faultinject.Deactivate()

	// Every dirty session round-trips through the store it just wrote.
	for _, sess := range dirty {
		st, err := persist.Open(stateDir+"/"+sess.ID, persist.Options{Config: testEngineCfg, Ctxs: srv.Ctxs()})
		if err != nil {
			t.Fatalf("%v at arrival %d: reopen %s: %v", point, nth, sess.ID, err)
		}
		if err := st.Engine().CheckIntegrity(); err != nil {
			t.Errorf("recovered %s: %v", sess.ID, err)
		}
		st.Close()
	}
	goroutineStable(t, base)
}

// TestChaosSweepServePoints is the short deterministic sweep CI runs:
// every serve-layer fault point at a couple of arrival indices.
func TestChaosSweepServePoints(t *testing.T) {
	cases := []struct {
		point faultinject.Point
		nth   []int64
	}{
		{faultinject.ServeAdmit, []int64{1, 7}},
		{faultinject.ServeDispatch, []int64{1, 5}},
		{faultinject.ServeSessionApply, []int64{1, 3}},
		{faultinject.ServeDrain, []int64{1, 2}},
	}
	for _, c := range cases {
		for _, nth := range c.nth {
			t.Run(fmt.Sprintf("%v/arrival-%d", c.point, nth), func(t *testing.T) {
				runChaosCase(t, c.point, nth)
			})
		}
	}
}

// TestChaosKillDuringLoad aborts a drain mid-load (tight deadline while
// traffic still flows): every caller outcome stays typed, and every
// session — even ones whose last apply raced the drain — is integral and
// persistable afterward.
func TestChaosKillDuringLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	ev := testEvolve(t, 3)
	stateDir := t.TempDir()
	srv := newTestServer(t, ev, Config{Workers: 2, QueueDepth: 8, StateDir: stateDir})

	loadDone := make(chan *Report, 1)
	go func() {
		rep, err := RunLoad(context.Background(), srv, ev, LoadConfig{
			Sessions:          8,
			Requests:          20,
			QueriesPerRequest: 2,
			ApplyEvery:        4,
			WarmBias:          0.4,
			Seed:              99,
		})
		if err != nil {
			loadDone <- &Report{Violations: []error{err}}
			return
		}
		loadDone <- rep
	}()
	// Let some traffic through, then drain with a deadline that will
	// expire while requests are still in flight.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	rep := <-loadDone
	for _, v := range rep.Violations {
		t.Errorf("violation under kill: %v", v)
	}
	for _, sess := range srv.Sessions() {
		if err := sess.Engine().CheckIntegrity(); err != nil {
			t.Errorf("session %s integrity after kill: %v", sess.ID, err)
		}
		if sess.Epoch() > 0 {
			st, err := persist.Open(stateDir+"/"+sess.ID, persist.Options{Config: testEngineCfg, Ctxs: srv.Ctxs()})
			if err != nil {
				t.Fatalf("reopen %s after kill: %v", sess.ID, err)
			}
			if err := st.Engine().CheckIntegrity(); err != nil {
				t.Errorf("recovered %s after kill: %v", sess.ID, err)
			}
			st.Close()
		}
	}
	goroutineStable(t, base)
}

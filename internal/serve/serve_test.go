package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"dynsum/internal/benchgen"
	"dynsum/internal/core"
	"dynsum/internal/intstack"
	"dynsum/internal/persist"
)

// testEngineCfg mirrors the enginetest suites: a budget large enough
// that every query on the scaled fixtures completes.
var testEngineCfg = core.Config{Budget: 150_000}

func testEvolve(t *testing.T, waves int) *benchgen.EvolveProgram {
	t.Helper()
	p := benchgen.ProfileByNameMust("soot-c").Scaled(0.004)
	ev, err := benchgen.GenerateEvolve(p, 7, waves)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func newTestServer(t *testing.T, ev *benchgen.EvolveProgram, cfg Config) *Server {
	t.Helper()
	if cfg.Engine.Budget == 0 {
		cfg.Engine = testEngineCfg
	}
	srv, err := NewServer(ev.Base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx) // ErrNotRunning when the test already drained
	})
	return srv
}

// queryVars returns one Query per deref site installed through wave k.
func queryVars(ev *benchgen.EvolveProgram, k int) []core.Query {
	var out []core.Query
	for _, d := range ev.DerefsThrough(k) {
		out = append(out, core.Query{Var: d.Var, Ctx: intstack.Empty})
	}
	return out
}

// applyWave builds wave k's delta log against sess's engine and applies
// it through the server.
func applyWave(t *testing.T, srv *Server, sess *Session, ev *benchgen.EvolveProgram, k int) {
	t.Helper()
	log, err := sess.Engine().NewDeltaLog()
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.WaveLog(log, k); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(context.Background(), sess.ID, log); err != nil {
		t.Fatalf("apply wave %d: %v", k, err)
	}
}

// goroutineStable waits until the process goroutine count settles back
// to at most base (same contract as core's batch leak assertions).
func goroutineStable(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine count stuck at %d, want <= %d: serve lifecycle leak", runtime.NumGoroutine(), base)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServedAnswersMatchOracle: every answer served through admission,
// lanes and workers is byte-identical (shared context table,
// PointsToSet.Equal) to a direct engine over the same wave prefix, at
// every epoch of the evolve replay.
func TestServedAnswersMatchOracle(t *testing.T) {
	ev := testEvolve(t, 3)
	srv := newTestServer(t, ev, Config{})
	sess, err := srv.CreateSession("s1", "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < ev.NumWaves(); epoch++ {
		if epoch > 0 {
			applyWave(t, srv, sess, ev, epoch)
		}
		prefix, err := ev.BuildPrefix(epoch)
		if err != nil {
			t.Fatal(err)
		}
		oracle := core.NewDynSum(prefix.G, testEngineCfg, srv.Ctxs())
		queries := queryVars(ev, epoch)
		for len(queries) > 0 {
			n := min(8, len(queries))
			batch := queries[:n]
			queries = queries[n:]
			resp, err := srv.Do(context.Background(), Request{Session: "s1", Queries: batch})
			if err != nil {
				t.Fatalf("epoch %d: Do: %v", epoch, err)
			}
			for i, r := range resp.Results {
				if r.Err != nil {
					t.Fatalf("epoch %d query %d: %v", epoch, i, r.Err)
				}
				want, werr := oracle.PointsToCtx(r.Var, r.Ctx)
				if werr != nil {
					t.Fatalf("epoch %d oracle var %d: %v", epoch, r.Var, werr)
				}
				if !r.Pts.Equal(want) {
					t.Fatalf("epoch %d var %d: served answer diverges from oracle", epoch, r.Var)
				}
			}
		}
	}
}

// TestOverloadShedsTyped drives a 1-worker, depth-2 queue at far beyond
// capacity. The contract: some requests shed, every refusal is a typed
// *OverloadError, every admitted request completes with oracle-identical
// answers, and the run terminates (bounded queue, no deadlock).
func TestOverloadShedsTyped(t *testing.T) {
	ev := testEvolve(t, 1)
	srv := newTestServer(t, ev, Config{Workers: 1, QueueDepth: 2})
	if _, err := srv.CreateSession("s1", "tenant-a"); err != nil {
		t.Fatal(err)
	}
	queries := queryVars(ev, 0)
	if len(queries) < 4 {
		t.Fatalf("fixture has only %d deref queries", len(queries))
	}
	oracle := core.NewDynSum(ev.Base.G, testEngineCfg, srv.Ctxs())

	const clients = 50
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		responses []*Response
		refusals  []error
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			q := queries[c%len(queries) : c%len(queries)+1]
			resp, err := srv.Do(context.Background(), Request{Session: "s1", Queries: q})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				refusals = append(refusals, err)
				return
			}
			responses = append(responses, resp)
		}(c)
	}
	wg.Wait()

	if len(refusals) == 0 {
		t.Fatal("no request shed at 25x queue capacity")
	}
	for _, err := range refusals {
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("refusal is not *OverloadError: %v (%T)", err, err)
		}
		if oe.QueueCap != 2 {
			t.Errorf("OverloadError.QueueCap = %d, want 2", oe.QueueCap)
		}
	}
	for _, resp := range responses {
		for _, r := range resp.Results {
			if r.Err != nil {
				t.Fatalf("admitted query failed: %v", r.Err)
			}
			want, werr := oracle.PointsToCtx(r.Var, r.Ctx)
			if werr != nil {
				t.Fatal(werr)
			}
			if !r.Pts.Equal(want) {
				t.Fatalf("var %d: answer under overload diverges from oracle", r.Var)
			}
		}
	}
	snap := srv.MetricsSnapshot()
	var shed, admitted int64
	for _, lc := range snap.Lanes {
		shed += lc.Shed
		admitted += lc.Admitted
	}
	if int(shed) != len(refusals) || int(admitted) != len(responses) {
		t.Errorf("metrics shed/admitted = %d/%d, observed %d/%d", shed, admitted, len(refusals), len(responses))
	}
	if tc := snap.Tenants["tenant-a"]; tc.Admitted != admitted || tc.Shed != shed {
		t.Errorf("tenant counters %+v disagree with lanes (admitted %d shed %d)", tc, admitted, shed)
	}
}

// TestLaneClassification: a cold footprint routes to the whale lane;
// once its summaries are cached the same query routes cheap.
func TestLaneClassification(t *testing.T) {
	ev := testEvolve(t, 1)
	srv := newTestServer(t, ev, Config{})
	if _, err := srv.CreateSession("s1", "t"); err != nil {
		t.Fatal(err)
	}
	q := queryVars(ev, 0)[:1]
	resp, err := srv.Do(context.Background(), Request{Session: "s1", Queries: q})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lane != LaneWhale {
		t.Fatalf("cold query ran in %s lane, want whale", resp.Lane)
	}
	resp, err = srv.Do(context.Background(), Request{Session: "s1", Queries: q})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lane != LaneCheap {
		t.Fatalf("warm repeat ran in %s lane, want cheap", resp.Lane)
	}
}

// TestCheapLaneFlowsBesideWhales wedges the whale lane's only worker on
// a blocked traversal, fills the whale queue to shedding, and asserts
// warm cheap-lane traffic keeps completing unimpeded the whole time —
// the isolation the two lanes exist for.
func TestCheapLaneFlowsBesideWhales(t *testing.T) {
	ev := testEvolve(t, 1)
	srv := newTestServer(t, ev, Config{Workers: 1, QueueDepth: 2})
	whaleSess, err := srv.CreateSession("whales", "tw")
	if err != nil {
		t.Fatal(err)
	}
	cheapSess, err := srv.CreateSession("cheap", "tc")
	if err != nil {
		t.Fatal(err)
	}
	queries := queryVars(ev, 0)
	if len(queries) < 8 {
		t.Fatalf("fixture has only %d deref queries", len(queries))
	}
	// Warm the cheap session's footprint directly (the test owns ordering,
	// so driving the engine outside the session lock is safe here).
	cheapQ := queries[:3]
	for _, q := range cheapQ {
		if _, err := cheapSess.Engine().PointsToCtx(q.Var, q.Ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Wedge the whale worker: the first traversal event blocks until gate
	// closes, holding the lane's one worker mid-request. Wait for the
	// worker to actually be inside the gate before issuing fill traffic —
	// otherwise a fill request can win the race for the worker and wedge
	// itself, and its cooperative deadline-cancel can never fire inside
	// the blocked Tracer callback.
	gate := make(chan struct{})
	wedgedIn := make(chan struct{})
	var once sync.Once
	whaleSess.Engine().Tracer = func(core.TraceEvent) {
		once.Do(func() {
			close(wedgedIn)
			<-gate
		})
	}
	wedged := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), Request{Session: "whales", Queries: queries[3:4]})
		wedged <- err
	}()
	<-wedgedIn
	// Fill the whale queue behind the wedged worker until shedding starts.
	deadline := time.Now().Add(5 * time.Second)
	shed := 0
	for shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("whale lane never filled to shedding")
		}
		_, err := srv.Do(context.Background(), Request{
			Session: "whales",
			Queries: queries[4+shed%4 : 5+shed%4],
			Deadline: 50 * time.Millisecond, // queued whales expire, keeping the queue refillable
		})
		var oe *OverloadError
		if errors.As(err, &oe) {
			if oe.Lane != LaneWhale {
				t.Fatalf("shed on %s lane, want whale", oe.Lane)
			}
			shed++
		} else if err != nil {
			var ee *ExpiredError
			if !errors.As(err, &ee) {
				t.Fatalf("unexpected refusal filling whale lane: %v", err)
			}
		}
	}

	// With the whale lane wedged and shedding, cheap traffic must flow.
	for i := 0; i < 20; i++ {
		resp, err := srv.Do(context.Background(), Request{Session: "cheap", Queries: cheapQ})
		if err != nil {
			t.Fatalf("cheap request %d refused while whales wedged: %v", i, err)
		}
		if resp.Lane != LaneCheap {
			t.Fatalf("warm request ran in %s lane", resp.Lane)
		}
		for _, r := range resp.Results {
			if r.Err != nil {
				t.Fatalf("cheap query failed: %v", r.Err)
			}
		}
	}
	snap := srv.MetricsSnapshot()
	if lc := snap.Lanes[LaneCheap.String()]; lc.Shed != 0 || lc.Completed < 20 {
		t.Errorf("cheap lane shed=%d completed=%d, want 0 shed / >=20 completed", lc.Shed, lc.Completed)
	}
	close(gate)
	if err := <-wedged; err != nil {
		t.Fatalf("wedged whale request: %v", err)
	}
}

// TestQuotaTokenBucket: per-tenant admission control under a fake clock.
func TestQuotaTokenBucket(t *testing.T) {
	ev := testEvolve(t, 1)
	srv := newTestServer(t, ev, Config{Quota: QuotaConfig{Rate: 1, Burst: 2}})
	now := time.Unix(1000, 0)
	srv.now = func() time.Time { return now }
	if _, err := srv.CreateSession("a", "tenant-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSession("b", "tenant-b"); err != nil {
		t.Fatal(err)
	}
	do := func(sess string) error {
		_, err := srv.Do(context.Background(), Request{Session: sess})
		return err
	}
	for i := 0; i < 2; i++ {
		if err := do("a"); err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	err := do("a")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-burst request: err = %v, want *QuotaError", err)
	}
	if qe.Tenant != "tenant-a" || qe.RetryAfter <= 0 {
		t.Errorf("QuotaError = %+v, want tenant-a with positive RetryAfter", qe)
	}
	// Another tenant is unaffected.
	if err := do("b"); err != nil {
		t.Fatalf("tenant-b blocked by tenant-a's quota: %v", err)
	}
	// One refill interval restores one token.
	now = now.Add(time.Second)
	if err := do("a"); err != nil {
		t.Fatalf("post-refill request: %v", err)
	}
	if err := do("a"); !errors.As(err, &qe) {
		t.Fatalf("second post-refill request: err = %v, want *QuotaError", err)
	}
	if got := srv.MetricsSnapshot().Tenants["tenant-a"]; got.QuotaRejected != 2 {
		t.Errorf("tenant-a QuotaRejected = %d, want 2", got.QuotaRejected)
	}
}

// TestWatchdogCancelsAtDeadline wedges a request mid-traversal past its
// deadline: the watchdog must cancel it (cause context.DeadlineExceeded,
// visible through the engine's typed cancellation), count it, and leave
// the request completed rather than stuck.
func TestWatchdogCancelsAtDeadline(t *testing.T) {
	ev := testEvolve(t, 1)
	srv := newTestServer(t, ev, Config{WatchdogInterval: time.Millisecond})
	sess, err := srv.CreateSession("s1", "t")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var once sync.Once
	sess.Engine().Tracer = func(core.TraceEvent) { once.Do(func() { <-gate }) }

	// A multi-query batch: the first query wedges on its first trace
	// event; once the watchdog cancels, the batch's remaining slots are
	// drained with the typed cancellation even if the wedged query itself
	// finishes between budget polls.
	q := queryVars(ev, 0)
	if len(q) > 12 {
		q = q[:12]
	}
	done := make(chan struct{})
	var resp *Response
	var doErr error
	go func() {
		defer close(done)
		resp, doErr = srv.Do(context.Background(), Request{Session: "s1", Queries: q, Deadline: 5 * time.Millisecond})
	}()
	// Wait for the watchdog to cancel the wedged request.
	deadline := time.Now().Add(5 * time.Second)
	for srv.MetricsSnapshot().Lanes[LaneWhale.String()].DeadlineCancels == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never canceled the overdue request")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	<-done
	if doErr != nil {
		t.Fatalf("Do: %v", doErr)
	}
	canceled := 0
	for _, r := range resp.Results {
		if r.Err == nil {
			continue
		}
		if !errors.Is(r.Err, core.ErrCanceled) || !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("overdue query error = %v, want ErrCanceled wrapping DeadlineExceeded", r.Err)
		}
		if !r.Partial {
			t.Error("deadline-canceled query not marked partial")
		}
		canceled++
	}
	if canceled == 0 {
		t.Fatal("no query in the overdue batch carries the typed cancellation")
	}
}

// TestQueuedRequestExpiresTyped: a request whose deadline passes while
// it waits behind a wedged worker is refused with *ExpiredError at
// pickup, never run.
func TestQueuedRequestExpiresTyped(t *testing.T) {
	ev := testEvolve(t, 1)
	srv := newTestServer(t, ev, Config{Workers: 1})
	sess, err := srv.CreateSession("s1", "t")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	wedgedIn := make(chan struct{})
	var once sync.Once
	sess.Engine().Tracer = func(core.TraceEvent) {
		once.Do(func() {
			close(wedgedIn)
			<-gate
		})
	}
	queries := queryVars(ev, 0)

	wedged := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), Request{Session: "s1", Queries: queries[:1]})
		wedged <- err
	}()
	// Wait until the wedge request holds the worker mid-traversal, then
	// queue one with a deadline that will pass while it waits. (Waiting on
	// admission alone would let the short-deadline request race the wedge
	// for the worker and wedge itself instead.)
	<-wedgedIn
	expCh := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), Request{Session: "s1", Queries: queries[1:2], Deadline: 5 * time.Millisecond})
		expCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	if err := <-wedged; err != nil {
		t.Fatalf("wedged request: %v", err)
	}
	err = <-expCh
	var ee *ExpiredError
	if !errors.As(err, &ee) {
		t.Fatalf("stale queued request: err = %v, want *ExpiredError", err)
	}
	if ee.Lane != LaneWhale || ee.Waited <= 0 {
		t.Errorf("ExpiredError = %+v, want whale lane with positive wait", ee)
	}
	if got := srv.MetricsSnapshot().Lanes[LaneWhale.String()].Expired; got != 1 {
		t.Errorf("whale lane Expired = %d, want 1", got)
	}
}

// TestDrainPersistsAndRecovers: drain persists every dirty session as a
// replayable store; reopening through persist.Open yields engines whose
// answers are byte-identical to the drained sessions'. Clean sessions
// are skipped, post-drain admission is a typed refusal, and the whole
// lifecycle leaks no goroutines.
func TestDrainPersistsAndRecovers(t *testing.T) {
	base := runtime.NumGoroutine()
	ev := testEvolve(t, 3)
	stateDir := t.TempDir()
	srv := newTestServer(t, ev, Config{StateDir: stateDir})

	clean, err := srv.CreateSession("clean", "t")
	if err != nil {
		t.Fatal(err)
	}
	dirtySessions := []*Session{}
	for i, waves := range []int{1, 2} {
		sess, err := srv.CreateSession(fmt.Sprintf("dirty-%d", i), "t")
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= waves; k++ {
			applyWave(t, srv, sess, ev, k)
		}
		// Serve some traffic so the drained state is a lived-in engine,
		// not a fresh one.
		if _, err := srv.Do(context.Background(), Request{Session: sess.ID, Queries: queryVars(ev, waves)[:4]}); err != nil {
			t.Fatal(err)
		}
		dirtySessions = append(dirtySessions, sess)
	}
	if _, err := srv.Do(context.Background(), Request{Session: "clean", Queries: queryVars(ev, 0)[:2]}); err != nil {
		t.Fatal(err)
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if srv.Ready() {
		t.Error("server still ready after drain")
	}
	if _, err := srv.Do(context.Background(), Request{Session: "clean"}); err == nil {
		t.Fatal("post-drain admission succeeded")
	} else {
		var oe *OverloadError
		if !errors.As(err, &oe) || !oe.Draining {
			t.Fatalf("post-drain refusal = %v, want draining *OverloadError", err)
		}
	}
	_ = clean
	if _, err := persist.Open(stateDir+"/clean", persist.Options{Config: testEngineCfg}); err == nil {
		t.Error("clean session was persisted; want skipped")
	}

	for _, sess := range dirtySessions {
		st, err := persist.Open(stateDir+"/"+sess.ID, persist.Options{Config: testEngineCfg, Ctxs: srv.Ctxs()})
		if err != nil {
			t.Fatalf("reopen %s: %v", sess.ID, err)
		}
		if err := st.Engine().CheckIntegrity(); err != nil {
			t.Fatalf("recovered %s: %v", sess.ID, err)
		}
		for _, q := range queryVars(ev, int(sess.Epoch())) {
			want, err := sess.Engine().PointsToCtx(q.Var, q.Ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := st.Engine().PointsToCtx(q.Var, q.Ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s var %d: recovered answer diverges from drained session", sess.ID, q.Var)
			}
		}
		st.Close()
	}
	goroutineStable(t, base)
}

// TestDrainDeadlineAbortsCooperatively: when the drain deadline passes,
// in-flight work is canceled (typed, cause-tagged), still-queued work is
// refused with a draining *OverloadError, and Drain returns with every
// accepted request completed and no goroutine leaks.
func TestDrainDeadlineAbortsCooperatively(t *testing.T) {
	base := runtime.NumGoroutine()
	ev := testEvolve(t, 1)
	srv := newTestServer(t, ev, Config{Workers: 1, QueueDepth: 4})
	sess, err := srv.CreateSession("s1", "t")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	wedgedIn := make(chan struct{})
	var once sync.Once
	sess.Engine().Tracer = func(core.TraceEvent) {
		once.Do(func() {
			close(wedgedIn)
			<-gate
		})
	}
	queries := queryVars(ev, 0)

	results := make(chan error, 3)
	issue := func(qs []core.Query) {
		resp, err := srv.Do(context.Background(), Request{Session: "s1", Queries: qs})
		if err == nil {
			for _, r := range resp.Results {
				if r.Err != nil {
					err = r.Err
					break
				}
			}
		}
		results <- err
	}
	// The wedge is a multi-query batch: after the drain deadline cancels
	// it, the batch's later slots observe the canceled context at entry
	// even if the wedged query itself finishes between budget polls.
	go issue(queries[0:6])
	<-wedgedIn // the wedge owns the worker before anything else queues
	go issue(queries[6:7]) // sits in the queue
	go issue(queries[7:8]) // sits in the queue

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()
	time.Sleep(80 * time.Millisecond) // let the drain deadline fire
	close(gate)
	if err := <-drainDone; err != nil {
		t.Fatalf("aborted drain: %v", err)
	}

	var canceled, refused, completed int
	for i := 0; i < 3; i++ {
		err := <-results
		var oe *OverloadError
		switch {
		case err == nil:
			completed++
		case errors.Is(err, core.ErrCanceled) && errors.Is(err, context.DeadlineExceeded):
			canceled++
		case errors.As(err, &oe) && oe.Draining:
			refused++
		default:
			t.Fatalf("untyped outcome under aborted drain: %v", err)
		}
	}
	if canceled == 0 {
		t.Errorf("no in-flight request was cancel-tagged (canceled=%d refused=%d completed=%d)", canceled, refused, completed)
	}
	if refused == 0 {
		t.Errorf("no queued request was refused while draining (canceled=%d refused=%d completed=%d)", canceled, refused, completed)
	}
	goroutineStable(t, base)
}

// TestServeLifecycleNoGoroutineLeaks is the full-lifecycle leak gate:
// start, mixed traffic with overload, drain — back to the baseline
// goroutine count. Run under -race in CI's servecheck.
func TestServeLifecycleNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	ev := testEvolve(t, 2)
	srv := newTestServer(t, ev, Config{Workers: 2, QueueDepth: 2})
	sess, err := srv.CreateSession("s1", "t")
	if err != nil {
		t.Fatal(err)
	}
	applyWave(t, srv, sess, ev, 1)
	queries := queryVars(ev, 1)
	var wg sync.WaitGroup
	for c := 0; c < 30; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			srv.Do(context.Background(), Request{
				Session:  "s1",
				Queries:  queries[c%len(queries) : c%len(queries)+1],
				Deadline: 100 * time.Millisecond,
			})
		}(c)
	}
	wg.Wait()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	goroutineStable(t, base)
}

// TestSessionRegistry covers the registry's typed refusals.
func TestSessionRegistry(t *testing.T) {
	ev := testEvolve(t, 1)
	srv := newTestServer(t, ev, Config{})
	if _, err := srv.CreateSession("dup", "t"); err != nil {
		t.Fatal(err)
	}
	_, err := srv.CreateSession("dup", "t")
	var de *DuplicateSessionError
	if !errors.As(err, &de) {
		t.Fatalf("duplicate create: err = %v, want *DuplicateSessionError", err)
	}
	_, err = srv.Do(context.Background(), Request{Session: "ghost"})
	var ue *UnknownSessionError
	if !errors.As(err, &ue) || ue.ID != "ghost" {
		t.Fatalf("unknown session: err = %v, want *UnknownSessionError{ghost}", err)
	}
}

package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestFireWithoutScheduleIsNoop(t *testing.T) {
	Deactivate()
	for _, p := range Points() {
		Fire(p) // must not panic
	}
	if Enabled() {
		t.Fatal("Enabled() true with no schedule active")
	}
}

func TestCountingOnlySchedule(t *testing.T) {
	s := NewSchedule()
	Activate(s)
	defer Deactivate()
	for i := 0; i < 5; i++ {
		Fire(PPTAExpand)
	}
	Fire(CachePutBatch)
	if got := s.Arrivals(PPTAExpand); got != 5 {
		t.Fatalf("PPTAExpand arrivals = %d, want 5", got)
	}
	if got := s.Arrivals(CachePutBatch); got != 1 {
		t.Fatalf("CachePutBatch arrivals = %d, want 1", got)
	}
	if got := s.Arrivals(OverlayApply); got != 0 {
		t.Fatalf("OverlayApply arrivals = %d, want 0", got)
	}
}

func TestArmedScheduleFiresAtExactArrival(t *testing.T) {
	s := NewSchedule()
	s.Arm(WriteBackCommit, 3)
	Activate(s)
	defer Deactivate()

	Fire(WriteBackCommit)
	Fire(WriteBackCommit)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("third arrival did not fire")
			}
			f, ok := AsFault(r)
			if !ok {
				t.Fatalf("panic value %T, want *Fault", r)
			}
			if f.Point != WriteBackCommit || f.Arrival != 3 {
				t.Fatalf("fault = %+v, want point %v arrival 3", f, WriteBackCommit)
			}
			var asErr error = f
			var target *Fault
			if !errors.As(asErr, &target) {
				t.Fatal("errors.As failed on *Fault")
			}
		}()
		Fire(WriteBackCommit)
	}()

	// Later arrivals do not re-fire (one-shot per armed index).
	Fire(WriteBackCommit)
	if got := s.Arrivals(WriteBackCommit); got != 4 {
		t.Fatalf("arrivals = %d, want 4", got)
	}
}

func TestArmArrivalsDeterministic(t *testing.T) {
	a, b := NewSchedule(), NewSchedule()
	a.ArmArrivals(42, 100)
	b.ArmArrivals(42, 100)
	for _, p := range Points() {
		if x, y := a.target[p].Load(), b.target[p].Load(); x != y {
			t.Fatalf("point %v: seeds diverge (%d vs %d)", p, x, y)
		}
		if x := a.target[p].Load(); x < 1 || x > 100 {
			t.Fatalf("point %v: armed arrival %d out of [1,100]", p, x)
		}
	}
}

func TestConcurrentFireCountsEveryArrival(t *testing.T) {
	s := NewSchedule()
	Activate(s)
	defer Deactivate()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Fire(PPTAExpand)
			}
		}()
	}
	wg.Wait()
	if got := s.Arrivals(PPTAExpand); got != goroutines*per {
		t.Fatalf("arrivals = %d, want %d", got, goroutines*per)
	}
}

func TestPointStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Points() {
		name := p.String()
		if name == "" || seen[name] {
			t.Fatalf("point %d has empty or duplicate name %q", p, name)
		}
		seen[name] = true
	}
}

// Package faultinject provides named, deterministically scheduled fault
// injection for the engine's crash-consistency tests.
//
// The engine's durability story (DESIGN.md §12) rests on a small set of
// commit points — the moments where a query or a mutation transitions
// shared state: a PPTA expansion touching scratch, the SCC write-back
// commit into the summary cache, the cache's putBatch segments, the
// overlay Apply stage→commit boundary, and the Compact rebuild. Each of
// those carries a Fire call naming its Point. In production the call is
// one atomic pointer load and a nil check; under test, an armed Schedule
// panics with *Fault at a chosen arrival, letting the test suite provoke
// a failure at exactly one lifecycle instant and then assert the
// validators stay green and clean re-runs match an uninjected oracle.
//
// Determinism: a Schedule counts arrivals per point with atomics and
// fires when the armed arrival index is hit. Single-threaded runs are
// exactly reproducible; concurrent runs fire at the n-th global arrival,
// whichever goroutine gets there. The sweep helper ArmArrivals derives
// arrival indices from a seed so CI can run a short deterministic
// schedule.
//
// The active schedule is process-global. Tests must Activate/Deactivate
// around the faulted region and must not run in parallel with other
// tests of the same package.
package faultinject

import (
	"fmt"
	"sync/atomic"
)

// Point names one injection site in the engine.
type Point uint8

const (
	// PPTAExpand fires once per PPTA state expansion (both the flat
	// worklist of runPPTA and the memoised memoExpand) — mid-query,
	// scratch dirty, nothing committed.
	PPTAExpand Point = iota
	// WriteBackCommit fires when a query with pending per-SCC summaries
	// reaches commitWriteBacks, before anything is materialised — the
	// last instant where an abort must leave the cache byte-identical.
	WriteBackCommit
	// CachePutBatch fires before each individual entry insert inside
	// summaryCache.putBatch — mid-batch, after the method index for the
	// segment was extended.
	CachePutBatch
	// OverlayApply fires at the Overlay.Apply stage→commit boundary:
	// every change has been computed read-only, nothing installed.
	OverlayApply
	// CompactRebuild fires inside Overlay.Compact between metadata and
	// edge installation into the fresh builder graph — mid-rebuild, the
	// live overlay untouched.
	CompactRebuild

	// SnapshotWrite fires before each section write of a snapshot's temp
	// file — mid-write, the temp file partial, the installed snapshot (if
	// any) untouched.
	SnapshotWrite
	// SnapshotRename fires after the snapshot temp file is written and
	// fsynced, immediately before the atomic rename installs it.
	SnapshotRename
	// JournalAppend fires between a journal record's header write and its
	// payload write — the torn-tail state recovery must truncate away.
	JournalAppend
	// JournalSync fires after a journal record is fully written, before
	// the fsync that makes it durable.
	JournalSync
	// JournalRotate fires during snapshot+journal rotation, after the new
	// snapshot's rename landed but before the journal is reset — the
	// window the epoch-stamped skip rule on recovery exists for.
	JournalRotate

	// ServeAdmit fires on the admission path of the serve layer
	// (internal/serve), after quota and lane classification but before
	// the request is enqueued — nothing owned by the server yet.
	ServeAdmit
	// ServeDispatch fires in a lane's dispatcher as it pops a queued
	// request, before the expiry check and the worker handoff — the
	// request is owned by the server and must still be completed with a
	// typed error.
	ServeDispatch
	// ServeSessionApply fires in the serve layer's Apply, after the
	// delta log is encoded but before the engine's ApplyDelta runs — the
	// session must stay at its previous epoch.
	ServeSessionApply
	// ServeDrain fires during graceful drain, once per dirty session
	// immediately before that session is persisted — other sessions'
	// persistence must be unaffected and a retry must succeed.
	ServeDrain

	numPoints
)

var pointNames = [numPoints]string{
	PPTAExpand:      "ppta-expand",
	WriteBackCommit: "writeback-commit",
	CachePutBatch:   "cache-putbatch",
	OverlayApply:    "overlay-apply",
	CompactRebuild:  "compact-rebuild",
	SnapshotWrite:   "snapshot-write",
	SnapshotRename:  "snapshot-rename",
	JournalAppend:   "journal-append",
	JournalSync:     "journal-sync",
	JournalRotate:   "journal-rotate",

	ServeAdmit:        "serve-admit",
	ServeDispatch:     "serve-dispatch",
	ServeSessionApply: "serve-session-apply",
	ServeDrain:        "serve-drain",
}

func (p Point) String() string {
	if p < numPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("faultinject.Point(%d)", uint8(p))
}

// Points returns the full injection-point catalog, in declaration order.
// Sweeps iterate this so a new point is automatically covered.
func Points() []Point {
	pts := make([]Point, numPoints)
	for i := range pts {
		pts[i] = Point(i)
	}
	return pts
}

// Fault is the panic value thrown by an armed schedule. It implements
// error so recovery boundaries that wrap panic values (core's
// *QueryPanicError, *MutatorPanicError) expose it to errors.As.
type Fault struct {
	Point   Point
	Arrival int64 // 1-based arrival index at which the fault fired
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s arrival %d", f.Point, f.Arrival)
}

// AsFault unwraps a recovered panic value (or a wrapped error chain's
// leaf Value) back into the injected *Fault, if that is what it is.
func AsFault(v any) (*Fault, bool) {
	f, ok := v.(*Fault)
	return f, ok
}

// Schedule counts arrivals at every point and fires an armed point at a
// chosen arrival. The zero schedule (or an armed index of 0) never
// fires and just counts — use that to discover how many arrivals a
// workload produces before sweeping k = 1..N.
type Schedule struct {
	target [numPoints]atomic.Int64
	count  [numPoints]atomic.Int64
}

// NewSchedule returns a counting-only schedule; Arm points as needed.
func NewSchedule() *Schedule { return new(Schedule) }

// Arm sets point p to fire at its nth arrival (1-based). n <= 0 disarms
// the point (counting continues).
func (s *Schedule) Arm(p Point, nth int64) { s.target[p].Store(nth) }

// Arrivals returns how many times point p has been reached since the
// schedule was created.
func (s *Schedule) Arrivals(p Point) int64 { return s.count[p].Load() }

// ArmArrivals arms each given point at a deterministic arrival index in
// [1, maxArrival], derived from seed — the "short schedule" used by CI
// sweeps. Passing no points arms the whole catalog.
func (s *Schedule) ArmArrivals(seed int64, maxArrival int64, points ...Point) {
	if maxArrival < 1 {
		maxArrival = 1
	}
	if len(points) == 0 {
		points = Points()
	}
	x := uint64(seed)
	for _, p := range points {
		// splitmix64: cheap, seed-stable across runs and platforms.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		s.Arm(p, 1+int64(z%uint64(maxArrival)))
	}
}

func (s *Schedule) fire(p Point) {
	n := s.count[p].Add(1)
	if t := s.target[p].Load(); t > 0 && n == t {
		panic(&Fault{Point: p, Arrival: n})
	}
}

// active is the process-global schedule; nil (the default) means every
// Fire call is one atomic load and a nil check.
var active atomic.Pointer[Schedule]

// Activate installs s as the process-global schedule. Pass the same
// schedule to multiple regions to accumulate counts across them.
func Activate(s *Schedule) { active.Store(s) }

// Deactivate removes the global schedule; Fire returns to its
// production cost. Always defer this next to Activate.
func Deactivate() { active.Store(nil) }

// Enabled reports whether a schedule is currently active.
func Enabled() bool { return active.Load() != nil }

// Fire marks an arrival at point p, panicking with *Fault if the active
// schedule armed this arrival. With no active schedule this is a single
// atomic pointer load — the only cost production binaries pay.
func Fire(p Point) {
	s := active.Load()
	if s == nil {
		return
	}
	s.fire(p)
}

package persist

import (
	"fmt"
	"os"
	"path/filepath"

	"dynsum/internal/pag"
	"dynsum/internal/persist/journal"
)

// SaveReplay writes dir as a recoverable store image of a session that
// evolved base through the given wire-encoded delta epochs, without
// replaying anything: an epoch-0 snapshot of the (frozen, never-written)
// base program plus a journal carrying the payloads as epochs 1..n, all
// durable before return. Open then recovers it like any store — replay
// through the live ApplyDelta, integrity-checked — so answers from the
// reopened engine match the session that produced the payloads, provided
// it is reopened under the session's engine Config (the usual replay-
// determinism contract, see Options.Config).
//
// This is the serve layer's graceful-drain path: many tenant sessions
// share one frozen base and each carries only its private delta history,
// so persisting a dirty session is one base image plus its journal — no
// per-session re-apply, no summary export, no quiescing beyond the
// session itself.
func SaveReplay(dir string, base *pag.Program, payloads [][]byte) error {
	img, err := base.G.Image()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	snap := &snapshot{
		epoch:     0,
		name:      base.Name,
		img:       img,
		casts:     base.Casts,
		derefs:    base.Derefs,
		factories: base.Factories,
	}
	if err := writeSnapshot(dir, snap); err != nil {
		return err
	}
	jr, recs, err := journal.Open(filepath.Join(dir, journalFile), journal.SyncNever)
	if err != nil {
		return err
	}
	if len(recs) > 0 {
		// Leftovers of a previous image in this dir: the fresh snapshot is
		// epoch 0, so nothing old may replay.
		if err := jr.Reset(); err != nil {
			jr.Close()
			return err
		}
	}
	for i, p := range payloads {
		if err := jr.Append(uint64(i+1), p); err != nil {
			jr.Close()
			return fmt.Errorf("persist: session epoch %d not journaled: %w", i+1, err)
		}
	}
	// One fsync for the whole journal (Close syncs under SyncAlways; with
	// SyncNever we sync explicitly): drain writes each session's history
	// in one burst, so per-record fsyncs would only multiply the cost.
	if err := jr.Sync(); err != nil {
		jr.Close()
		return err
	}
	return jr.Close()
}

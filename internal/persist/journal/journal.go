// Package journal implements the append-only delta journal of the
// persistence layer (internal/persist): one length-prefixed, CRC32-guarded
// record per applied epoch, so a restart replays exactly the epochs the
// dead process made durable.
//
// Failure policy (DESIGN.md §13): the journal distinguishes a *torn tail*
// from *mid-journal corruption*. A record that simply stops early —
// short header or short payload at end of file, the signature of a crash
// mid-append — is not an error: the tail is truncated away, every record
// before it replays, and the journal is re-appendable at the truncation
// point. A record that is fully present but fails its CRC is corruption
// the crash model cannot produce, and surfaces as a typed
// *CorruptJournalError; replaying past it could resurrect a half-written
// epoch as real program state.
//
// A corrupted length field narrows the classic length-prefix blind spot
// to its minimum: record headers are written in a single Write, so a
// crash leaves either a short header (torn tail, truncated) or a complete
// one whose length is genuine. A complete header declaring more than
// MaxRecordLen is therefore bit-rot, not a crash, and surfaces as a
// typed *CorruptJournalError; a sane length that merely overruns the
// remaining file is the torn-payload tail and truncates as before. No
// declared length is ever trusted for an allocation — payloads are
// subslices of bytes already read, bounded by the file itself.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"dynsum/internal/faultinject"
)

// Magic opens every journal file; Version guards the record layout.
const (
	Magic   = "DSUMJRNL"
	Version = 1

	headerSize = len(Magic) + 4 // magic + u32 version
	recordSize = 4 + 8 + 4      // u32 payload length + u64 epoch + u32 crc
)

// MaxRecordLen bounds a record's declared payload length (64 MiB). One
// record holds one encoded delta.Log epoch — orders of magnitude smaller
// in practice — so a complete header declaring more than this is
// corruption (see the package comment for why it cannot be a torn tail),
// reported as a typed *CorruptJournalError instead of being silently
// folded into tail truncation. Append enforces the same bound on the
// write side.
const MaxRecordLen = 64 << 20

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record returned from Append
	// survives a crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: faster, and a crash may lose
	// the most recent appends (they become a torn tail on reopen).
	SyncNever
)

// CorruptJournalError reports mid-journal corruption: a record that is
// fully present but wrong (bad CRC, bad magic, impossible layout). It is
// fatal for the journal — replay must not continue past it — but the
// snapshot it extends is unaffected.
type CorruptJournalError struct {
	Path   string // journal file, "" when scanning raw bytes
	Record int    // 0-based index of the bad record; -1 for header damage
	Offset int64  // byte offset of the damage
	Reason string
}

func (e *CorruptJournalError) Error() string {
	where := "journal"
	if e.Path != "" {
		where = e.Path
	}
	if e.Record < 0 {
		return fmt.Sprintf("persist: %s corrupt: %s (offset %d)", where, e.Reason, e.Offset)
	}
	return fmt.Sprintf("persist: %s corrupt at record %d: %s (offset %d)", where, e.Record, e.Reason, e.Offset)
}

// Record is one scanned journal entry: the epoch it advanced the store to
// and the wire-encoded delta.Log payload.
type Record struct {
	Epoch   uint64
	Payload []byte
}

// Scan parses journal bytes: the header, then records until the torn
// tail. good is the byte length of the intact prefix (header plus whole
// records) — reopening truncates the file to it. A CRC failure on a
// complete record returns a *CorruptJournalError; a short tail does not.
func Scan(data []byte) (recs []Record, good int64, err error) {
	if len(data) < headerSize {
		// A file this short is a crash during creation: everything it
		// could hold is a torn tail, unless it contradicts the magic.
		if len(data) > 0 && string(data[:min(len(data), len(Magic))]) != Magic[:min(len(data), len(Magic))] {
			return nil, 0, &CorruptJournalError{Record: -1, Offset: 0, Reason: "bad magic"}
		}
		return nil, 0, nil
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, 0, &CorruptJournalError{Record: -1, Offset: 0, Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(data[len(Magic):]); v != Version {
		return nil, 0, &CorruptJournalError{Record: -1, Offset: int64(len(Magic)),
			Reason: fmt.Sprintf("journal version %d, want %d", v, Version)}
	}
	off := headerSize
	for off < len(data) {
		if len(data)-off < recordSize {
			break // torn header
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		epoch := binary.LittleEndian.Uint64(data[off+4:])
		sum := binary.LittleEndian.Uint32(data[off+12:])
		if plen > MaxRecordLen {
			// The header is complete (checked above), so this length was
			// written whole: an insane value is bit-rot in the prefix, not
			// a crash artifact, and truncating here could silently drop
			// good epochs that follow.
			return nil, 0, &CorruptJournalError{Record: len(recs), Offset: int64(off),
				Reason: fmt.Sprintf("declared record length %d exceeds maximum %d", plen, int64(MaxRecordLen))}
		}
		if int(plen) > len(data)-off-recordSize {
			break // torn payload at end of file
		}
		payload := data[off+recordSize : off+recordSize+int(plen)]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, 0, &CorruptJournalError{Record: len(recs), Offset: int64(off),
				Reason: fmt.Sprintf("record CRC mismatch (stored %08x, computed %08x)", sum, got)}
		}
		recs = append(recs, Record{Epoch: epoch, Payload: payload})
		off += recordSize + int(plen)
	}
	return recs, int64(off), nil
}

// Journal is an open journal file positioned for appending.
type Journal struct {
	path string
	f    *os.File
	sync SyncPolicy
}

// Open opens (creating if needed) the journal at path, scans its records,
// truncates a torn tail so the file ends on a record boundary, and
// returns the writer plus the surviving records. Payload slices alias one
// read of the file and stay valid until the caller drops them.
func Open(path string, sync SyncPolicy) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, good, err := Scan(data)
	if err != nil {
		f.Close()
		if ce, ok := err.(*CorruptJournalError); ok {
			ce.Path = path
		}
		return nil, nil, err
	}
	j := &Journal{path: path, f: f, sync: sync}
	if good < int64(headerSize) {
		// Fresh or creation-torn file: (re)write the header.
		if err := j.reset(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, nil, nil
	}
	if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, recs, nil
}

// Append writes one record and, under SyncAlways, makes it durable before
// returning. The header and payload are written separately: a crash (or
// injected fault) in between leaves exactly the torn tail Scan truncates.
func (j *Journal) Append(epoch uint64, payload []byte) error {
	if len(payload) > MaxRecordLen {
		return fmt.Errorf("journal: record payload %d bytes exceeds MaxRecordLen %d", len(payload), int64(MaxRecordLen))
	}
	var hdr [recordSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:], epoch)
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(payload))
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	faultinject.Fire(faultinject.JournalAppend)
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	faultinject.Fire(faultinject.JournalSync)
	if j.sync == SyncAlways {
		return j.f.Sync()
	}
	return nil
}

// Reset truncates the journal back to an empty (header-only) file — the
// rotation step after a new snapshot has been installed. Durable before
// return regardless of the sync policy.
func (j *Journal) Reset() error {
	faultinject.Fire(faultinject.JournalRotate)
	return j.reset()
}

func (j *Journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:], Magic)
	binary.LittleEndian.PutUint32(hdr[len(Magic):], Version)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	return j.f.Sync()
}

// Sync flushes appended records to stable storage regardless of the
// sync policy — the batch counterpart to SyncAlways for writers that
// append a burst under SyncNever and make it durable once (the serve
// layer's drain persistence).
func (j *Journal) Sync() error {
	if j.f == nil {
		return os.ErrClosed
	}
	return j.f.Sync()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs (under SyncAlways) and closes the file. Safe to call twice.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if j.sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

package journal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzJournalScan throws arbitrary bytes at the journal scanner. The
// contract: no panic; any error is a typed *CorruptJournalError; the
// reported good prefix is within the input; and scanning the good prefix
// again reproduces exactly the same records with no error (truncating a
// torn tail must converge in one step). The committed corpus under
// testdata/fuzz/FuzzJournalScan covers a pristine journal plus torn
// tails, payload/CRC bit flips, bad magic and bad version.
func FuzzJournalScan(f *testing.F) {
	for _, seed := range corruptedJournalSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := Scan(data)
		if err != nil {
			var ce *CorruptJournalError
			if !errors.As(err, &ce) {
				t.Fatalf("untyped scan failure: %v (%T)", err, err)
			}
			return
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good prefix %d outside input of %d bytes", good, len(data))
		}
		again, good2, err := Scan(data[:good])
		if err != nil {
			t.Fatalf("good prefix does not rescan: %v", err)
		}
		if good2 != good || len(again) != len(recs) {
			t.Fatalf("rescan of good prefix: %d bytes / %d records, want %d / %d",
				good2, len(again), good, len(recs))
		}
		for i := range recs {
			if again[i].Epoch != recs[i].Epoch || string(again[i].Payload) != string(recs[i].Payload) {
				t.Fatalf("rescan record %d diverges", i)
			}
		}
	})
}

// validJournal builds journal bytes holding the given payloads.
func validJournal(payloads ...string) []byte {
	out := append([]byte(nil), Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	for i, p := range payloads {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = binary.LittleEndian.AppendUint64(out, uint64(i+1))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE([]byte(p)))
		out = append(out, p...)
	}
	return out
}

func corruptedJournalSeeds() [][]byte {
	good := validJournal("first-record-payload", "", "third")
	seeds := [][]byte{good, nil, []byte(Magic), validJournal()}
	for _, cut := range []int{3, headerSize, headerSize + 5, len(good) - 1, len(good) - 4} {
		if cut <= len(good) {
			seeds = append(seeds, good[:cut])
		}
	}
	for pos := 0; pos < len(good); pos += len(good)/12 + 1 {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x08
		seeds = append(seeds, bad)
	}
	skew := append([]byte(nil), good...)
	skew[len(Magic)] = 0x09
	seeds = append(seeds, skew)
	// A complete header declaring an insane payload length: the
	// corrupted-length case Scan must report as typed corruption rather
	// than fold into tail truncation (or worse, trust for an allocation).
	insane := validJournal("ok")
	insane = binary.LittleEndian.AppendUint32(insane, MaxRecordLen+1)
	insane = binary.LittleEndian.AppendUint64(insane, 2)
	insane = binary.LittleEndian.AppendUint32(insane, 0)
	insane = append(insane, "short"...)
	seeds = append(seeds, insane)
	return seeds
}

// TestWriteFuzzCorpus regenerates the committed corpus when
// PERSIST_WRITE_CORPUS=1; by default it only verifies the corpus exists.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalScan")
	if os.Getenv("PERSIST_WRITE_CORPUS") == "" {
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("committed fuzz corpus missing at %s (set PERSIST_WRITE_CORPUS=1 to write it): %v", dir, err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range corruptedJournalSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal holds %d records", len(recs))
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	for i, p := range payloads {
		if err := j.Append(uint64(i+1), p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs = openT(t, path)
	if len(recs) != len(payloads) {
		t.Fatalf("reopened %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Epoch != uint64(i+1) || string(r.Payload) != string(payloads[i]) {
			t.Errorf("record %d = epoch %d %q, want epoch %d %q", i, r.Epoch, r.Payload, i+1, payloads[i])
		}
	}
}

// TestTornTailTruncatedAndReappendable: every proper prefix cut inside
// the final record must reopen silently with the last record dropped,
// and the reopened journal must accept new appends at the cut.
func TestTornTailTruncatedAndReappendable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path)
	if err := j.Append(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("second-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := headerSize + recordSize + len("first-record")

	for cut := firstEnd + 1; cut < len(full); cut++ {
		torn := filepath.Join(t.TempDir(), "torn")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := Open(torn, SyncAlways)
		if err != nil {
			t.Fatalf("cut %d: torn tail must not error: %v", cut, err)
		}
		if len(recs) != 1 || string(recs[0].Payload) != "first-record" {
			t.Fatalf("cut %d: recovered %d records", cut, len(recs))
		}
		if err := j2.Append(2, []byte("replacement")); err != nil {
			t.Fatalf("cut %d: re-append: %v", cut, err)
		}
		j2.Close()
		_, recs2, err := Open(torn, SyncAlways)
		if err != nil {
			t.Fatalf("cut %d: reopen after re-append: %v", cut, err)
		}
		if len(recs2) != 2 || string(recs2[1].Payload) != "replacement" {
			t.Fatalf("cut %d: re-appended journal reopened with %d records", cut, len(recs2))
		}
	}
}

// TestCreationTornFile: a file shorter than the header (crash during
// creation) reopens as an empty journal; one contradicting the magic is
// corrupt.
func TestCreationTornFile(t *testing.T) {
	for _, n := range []int{0, 1, len(Magic) - 1, len(Magic), headerSize - 1} {
		path := filepath.Join(t.TempDir(), "j")
		if err := os.WriteFile(path, []byte(Magic)[:min(n, len(Magic))], 0o644); err != nil {
			t.Fatal(err)
		}
		if n > len(Magic) {
			continue
		}
		j, recs, err := Open(path, SyncAlways)
		if err != nil {
			t.Fatalf("%d header bytes: %v", n, err)
		}
		if len(recs) != 0 {
			t.Fatalf("%d header bytes: %d records", n, len(recs))
		}
		j.Close()
	}

	path := filepath.Join(t.TempDir(), "j")
	if err := os.WriteFile(path, []byte("NOTAJRNL"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, SyncAlways)
	var ce *CorruptJournalError
	if !errors.As(err, &ce) {
		t.Fatalf("bad magic: err = %v, want *CorruptJournalError", err)
	}
	if ce.Path != path {
		t.Errorf("corruption error path = %q, want %q", ce.Path, path)
	}
}

// TestMidJournalCorruptionIsTyped: flipping any payload byte of a
// non-final record is fatal, not a torn tail.
func TestMidJournalCorruptionIsTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path)
	if err := j.Append(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("second-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+recordSize] ^= 0xff // first byte of record 0's payload

	_, _, err = Scan(data)
	var ce *CorruptJournalError
	if !errors.As(err, &ce) {
		t.Fatalf("Scan on corrupted record: err = %v, want *CorruptJournalError", err)
	}
	if ce.Record != 0 {
		t.Errorf("corruption reported at record %d, want 0", ce.Record)
	}
}

func TestResetEmptiesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path)
	if err := j.Append(1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("after-reset")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, path)
	if len(recs) != 1 || recs[0].Epoch != 2 {
		t.Fatalf("post-reset journal reopened with %v", recs)
	}
}

func TestCloseIdempotent(t *testing.T) {
	j, _ := openT(t, filepath.Join(t.TempDir(), "j"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal holds %d records", len(recs))
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	for i, p := range payloads {
		if err := j.Append(uint64(i+1), p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs = openT(t, path)
	if len(recs) != len(payloads) {
		t.Fatalf("reopened %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Epoch != uint64(i+1) || string(r.Payload) != string(payloads[i]) {
			t.Errorf("record %d = epoch %d %q, want epoch %d %q", i, r.Epoch, r.Payload, i+1, payloads[i])
		}
	}
}

// TestTornTailTruncatedAndReappendable: every proper prefix cut inside
// the final record must reopen silently with the last record dropped,
// and the reopened journal must accept new appends at the cut.
func TestTornTailTruncatedAndReappendable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path)
	if err := j.Append(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("second-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := headerSize + recordSize + len("first-record")

	for cut := firstEnd + 1; cut < len(full); cut++ {
		torn := filepath.Join(t.TempDir(), "torn")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := Open(torn, SyncAlways)
		if err != nil {
			t.Fatalf("cut %d: torn tail must not error: %v", cut, err)
		}
		if len(recs) != 1 || string(recs[0].Payload) != "first-record" {
			t.Fatalf("cut %d: recovered %d records", cut, len(recs))
		}
		if err := j2.Append(2, []byte("replacement")); err != nil {
			t.Fatalf("cut %d: re-append: %v", cut, err)
		}
		j2.Close()
		_, recs2, err := Open(torn, SyncAlways)
		if err != nil {
			t.Fatalf("cut %d: reopen after re-append: %v", cut, err)
		}
		if len(recs2) != 2 || string(recs2[1].Payload) != "replacement" {
			t.Fatalf("cut %d: re-appended journal reopened with %d records", cut, len(recs2))
		}
	}
}

// TestCreationTornFile: a file shorter than the header (crash during
// creation) reopens as an empty journal; one contradicting the magic is
// corrupt.
func TestCreationTornFile(t *testing.T) {
	for _, n := range []int{0, 1, len(Magic) - 1, len(Magic), headerSize - 1} {
		path := filepath.Join(t.TempDir(), "j")
		if err := os.WriteFile(path, []byte(Magic)[:min(n, len(Magic))], 0o644); err != nil {
			t.Fatal(err)
		}
		if n > len(Magic) {
			continue
		}
		j, recs, err := Open(path, SyncAlways)
		if err != nil {
			t.Fatalf("%d header bytes: %v", n, err)
		}
		if len(recs) != 0 {
			t.Fatalf("%d header bytes: %d records", n, len(recs))
		}
		j.Close()
	}

	path := filepath.Join(t.TempDir(), "j")
	if err := os.WriteFile(path, []byte("NOTAJRNL"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, SyncAlways)
	var ce *CorruptJournalError
	if !errors.As(err, &ce) {
		t.Fatalf("bad magic: err = %v, want *CorruptJournalError", err)
	}
	if ce.Path != path {
		t.Errorf("corruption error path = %q, want %q", ce.Path, path)
	}
}

// TestMidJournalCorruptionIsTyped: flipping any payload byte of a
// non-final record is fatal, not a torn tail.
func TestMidJournalCorruptionIsTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path)
	if err := j.Append(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("second-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+recordSize] ^= 0xff // first byte of record 0's payload

	_, _, err = Scan(data)
	var ce *CorruptJournalError
	if !errors.As(err, &ce) {
		t.Fatalf("Scan on corrupted record: err = %v, want *CorruptJournalError", err)
	}
	if ce.Record != 0 {
		t.Errorf("corruption reported at record %d, want 0", ce.Record)
	}
}

// TestInsaneDeclaredLengthIsTyped: a complete record header declaring a
// payload beyond MaxRecordLen is corruption (record headers are written
// whole, so a crash cannot produce it), reported as a typed error at the
// offending record rather than silently truncated as a torn tail — and
// the declared length is never used for an allocation.
func TestInsaneDeclaredLengthIsTyped(t *testing.T) {
	data := validJournal("good-epoch")
	data = binary.LittleEndian.AppendUint32(data, MaxRecordLen+1)
	data = binary.LittleEndian.AppendUint64(data, 2)
	data = binary.LittleEndian.AppendUint32(data, 0)
	data = append(data, "partial"...)

	_, _, err := Scan(data)
	var ce *CorruptJournalError
	if !errors.As(err, &ce) {
		t.Fatalf("Scan with insane length: err = %v, want *CorruptJournalError", err)
	}
	if ce.Record != 1 {
		t.Errorf("corruption reported at record %d, want 1", ce.Record)
	}

	// The same length that is merely too large for the remaining file but
	// within MaxRecordLen stays a torn tail.
	torn := validJournal("good-epoch")
	torn = binary.LittleEndian.AppendUint32(torn, MaxRecordLen)
	torn = binary.LittleEndian.AppendUint64(torn, 2)
	torn = binary.LittleEndian.AppendUint32(torn, 0)
	recs, good, err := Scan(torn)
	if err != nil {
		t.Fatalf("sane overrunning length must stay a torn tail, got %v", err)
	}
	if len(recs) != 1 || good != int64(len(validJournal("good-epoch"))) {
		t.Errorf("torn tail: %d records / good %d, want 1 / %d", len(recs), good, len(validJournal("good-epoch")))
	}

	// Append refuses to write a record Scan would reject.
	j, _ := openT(t, filepath.Join(t.TempDir(), "j"))
	defer j.Close()
	if err := j.Append(1, make([]byte, MaxRecordLen+1)); err == nil {
		t.Fatal("Append beyond MaxRecordLen succeeded, want error")
	}
	if err := j.Append(1, []byte("still fine")); err != nil {
		t.Fatalf("journal unusable after refused append: %v", err)
	}
}

func TestResetEmptiesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path)
	if err := j.Append(1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("after-reset")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, path)
	if len(recs) != 1 || recs[0].Epoch != 2 {
		t.Fatalf("post-reset journal reopened with %v", recs)
	}
}

func TestCloseIdempotent(t *testing.T) {
	j, _ := openT(t, filepath.Join(t.TempDir(), "j"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

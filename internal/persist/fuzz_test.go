package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"dynsum/internal/pag"
)

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot decoder. The
// contract under test: no panic ever, and every failure is typed — a
// *CorruptSnapshotError or an ErrSnapshotVersion wrap, reachable through
// errors.As/Is. When the bytes do decode, the result must survive a
// re-encode/re-decode round trip and feed pag.FromImage without panicking
// (FromImage may well reject it — the image-level validators run there).
// The committed corpus under testdata/fuzz/FuzzSnapshotDecode holds a
// pristine snapshot plus deterministic corruptions of every class
// (truncations, bit flips in framing/CRC/payload, bad magic, bad
// version); plain `go test` replays it.
func FuzzSnapshotDecode(f *testing.F) {
	for _, seed := range corruptedSnapshotSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			var ce *CorruptSnapshotError
			if !errors.As(err, &ce) && !errors.Is(err, ErrSnapshotVersion) {
				t.Fatalf("untyped decode failure: %v (%T)", err, err)
			}
			return
		}
		re := encodeSnapshot(s)
		if _, err := decodeSnapshot(re); err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if _, err := pag.FromImage(s.img); err != nil {
			// Rejection is fine; only a panic would fail the target.
			return
		}
	})
}

// corruptedSnapshotSeeds builds the in-process seed set: a small real
// snapshot and systematic damage to it. The committed corpus was written
// from exactly this set (see TestWriteFuzzCorpus).
func corruptedSnapshotSeeds() [][]byte {
	good := encodeSnapshot(testSnapshot())
	seeds := [][]byte{good, nil, []byte("DSUMSNAP")}
	// Truncations: header boundary, a section boundary, mid-payload.
	for _, cut := range []int{4, snapHeaderSize, snapHeaderSize + sectionHdrSize, len(good) / 2, len(good) - 1} {
		if cut <= len(good) {
			seeds = append(seeds, good[:cut])
		}
	}
	// Bit flips marching through framing, CRCs and payloads.
	for pos := 0; pos < len(good); pos += len(good)/16 + 1 {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x20
		seeds = append(seeds, bad)
	}
	// Version skew and section-count lies.
	skew := append([]byte(nil), good...)
	skew[len(Magic)] = 0x7f
	seeds = append(seeds, skew)
	lies := append([]byte(nil), good...)
	lies[len(Magic)+4] = 0xff
	seeds = append(seeds, lies)
	// Trailing garbage.
	seeds = append(seeds, append(append([]byte(nil), good...), 0xde, 0xad))
	return seeds
}

// testSnapshot builds a tiny deterministic snapshot for the fuzz seeds.
func testSnapshot() *snapshot {
	prog := frozenProgram(3)
	img, err := prog.G.Image()
	if err != nil {
		panic(err)
	}
	return &snapshot{epoch: 2, name: prog.Name, img: img,
		casts: prog.Casts, derefs: prog.Derefs, factories: prog.Factories}
}

// TestWriteFuzzCorpus regenerates the committed corpus when
// PERSIST_WRITE_CORPUS=1; by default it only verifies the corpus exists.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotDecode")
	if os.Getenv("PERSIST_WRITE_CORPUS") == "" {
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("committed fuzz corpus missing at %s (set PERSIST_WRITE_CORPUS=1 to write it): %v", dir, err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range corruptedSnapshotSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

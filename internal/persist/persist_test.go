package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dynsum/internal/benchgen"
	"dynsum/internal/core"
	"dynsum/internal/fixture"
	"dynsum/internal/intstack"
	"dynsum/internal/pag"
)

var bigBudget = core.Config{Budget: 150_000}

// frozenProgram builds a frozen random program with client site tables
// attached, so every snapshot section is non-trivially exercised.
func frozenProgram(seed int64) *pag.Program {
	prog := fixture.RandProgram(seed, fixture.RandConfig{}.Defaults())
	prog.G.Freeze()
	locals := fixture.AllLocals(prog)
	for i, v := range locals {
		switch i % 3 {
		case 0:
			prog.Derefs = append(prog.Derefs, pag.DerefSite{Var: v, Name: fmt.Sprintf("d%d", i)})
		case 1:
			prog.Casts = append(prog.Casts, pag.CastSite{Var: v, Target: 0, Name: fmt.Sprintf("c%d", i)})
		default:
			m := prog.G.Node(v).Method
			if m != pag.NoMethod {
				prog.Factories = append(prog.Factories, pag.FactorySite{Method: m, Ret: v, Name: fmt.Sprintf("f%d", i)})
			}
		}
	}
	return prog
}

func queryVars(prog *pag.Program, max int) []pag.NodeID {
	locals := fixture.AllLocals(prog)
	if len(locals) > max {
		locals = locals[:max]
	}
	return locals
}

// comparePts asserts two engines answer a query batch identically
// (conservative budget/depth failures must match too).
func comparePts(t *testing.T, tag string, vars []pag.NodeID, got, want *core.DynSum) {
	t.Helper()
	for _, v := range vars {
		g, errG := got.PointsTo(v)
		w, errW := want.PointsTo(v)
		if (errG == nil) != (errW == nil) {
			t.Fatalf("%s: node %d errors diverge: %v vs %v", tag, v, errG, errW)
		}
		if errG == nil && !g.Equal(w) {
			t.Errorf("%s: pts(%d) = %v, want %v", tag, v, g, w)
		}
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	prog := frozenProgram(21)
	dir := t.TempDir()
	ctxs := new(intstack.Table)
	opts := Options{Config: bigBudget, Ctxs: ctxs}
	st, err := Create(dir, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Epoch() != 0 {
		t.Errorf("fresh store epoch = %d", st.Epoch())
	}

	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 0 {
		t.Errorf("reopened epoch = %d", re.Epoch())
	}
	p2 := re.Program()
	if p2.Name != prog.Name || len(p2.Casts) != len(prog.Casts) ||
		len(p2.Derefs) != len(prog.Derefs) || len(p2.Factories) != len(prog.Factories) {
		t.Errorf("reopened program lost sites: %d/%d/%d", len(p2.Casts), len(p2.Derefs), len(p2.Factories))
	}
	if p2.G.NumNodes() != prog.G.NumNodes() || p2.G.NumMethods() != prog.G.NumMethods() {
		t.Fatalf("reopened graph shape %d/%d", p2.G.NumNodes(), p2.G.NumMethods())
	}
	comparePts(t, "reopen", queryVars(prog, 40), re.Engine(), st.Engine())
	if err := re.Engine().CheckIntegrity(); err != nil {
		t.Errorf("CheckIntegrity: %v", err)
	}
}

// TestSnapshotPreservesNontrivialCondensation pins the non-trivial branch
// of the cond section: a cyclic benchmark's collapsed SCCs must survive
// the round trip (same representative structure, identical answers).
func TestSnapshotPreservesNontrivialCondensation(t *testing.T) {
	p := benchgen.ProfileByNameMust("soot-c-cyclic").Scaled(0.004)
	ev, err := benchgen.GenerateEvolve(p, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := ev.Base
	if prog.G.Condensation() == nil || prog.G.Condensation().Trivial() {
		t.Fatal("fixture lost its nontrivial condensation")
	}
	dir := t.TempDir()
	ctxs := new(intstack.Table)
	opts := Options{Config: bigBudget, Ctxs: ctxs}
	st, err := Create(dir, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	cond := re.Program().G.Condensation()
	if cond == nil || cond.Trivial() {
		t.Fatal("round trip lost the condensation")
	}
	want := prog.G.Condensation().Stats()
	if got := cond.Stats(); got != want {
		t.Errorf("condensation stats %+v, want %+v", got, want)
	}
	var vars []pag.NodeID
	for _, d := range prog.Derefs {
		vars = append(vars, d.Var)
	}
	comparePts(t, "cyclic reopen", vars, re.Engine(), st.Engine())
}

// TestCompactPersistsSummaries: a warmed store compacts; reopening must
// come back with the summary cache already populated and identical
// answers.
func TestCompactPersistsSummaries(t *testing.T) {
	prog := frozenProgram(22)
	dir := t.TempDir()
	ctxs := new(intstack.Table)
	opts := Options{Config: bigBudget, Ctxs: ctxs}
	st, err := Create(dir, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	vars := queryVars(prog, 40)
	for _, v := range vars {
		st.Engine().PointsTo(v) //nolint:errcheck // warming only
	}
	warm := st.Engine().SummaryCount()
	if warm == 0 {
		t.Fatal("warm-up cached nothing")
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Engine().SummaryCount(); got != warm {
		t.Errorf("reopened summary count %d, want %d", got, warm)
	}
	comparePts(t, "warm reopen", vars, re.Engine(), st.Engine())

	// SkipSummaries must leave the cache out.
	cold := Options{Config: bigBudget, Ctxs: ctxs, SkipSummaries: true}
	st2, err := Open(dir, cold)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(dir, cold)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.Engine().SummaryCount(); got != 0 {
		t.Errorf("SkipSummaries snapshot reopened with %d summaries", got)
	}
}

// evolveStore drives a store and a plain oracle engine through the same
// waves, returning both plus the query batch.
func evolveStore(t *testing.T, dir string, waves int) (*Store, *core.DynSum, *benchgen.EvolveProgram, []pag.NodeID) {
	t.Helper()
	p := benchgen.ProfileByNameMust("soot-c").Scaled(0.004)
	ev, err := benchgen.GenerateEvolve(p, 7, waves)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bigBudget
	cfg.CompactFraction = -1
	ctxs := new(intstack.Table)
	opts := Options{Config: cfg, Ctxs: ctxs}
	st, err := Create(dir, ev.Base, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	oracle := core.NewDynSum(ev.Base.G, cfg, ctxs)
	for k := 1; k < ev.NumWaves(); k++ {
		log, err := st.Engine().NewDeltaLog()
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.WaveLog(log, k); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Append(log); err != nil {
			t.Fatalf("Append wave %d: %v", k, err)
		}
		olog, err := oracle.NewDeltaLog()
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.WaveLog(olog, k); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.ApplyDelta(olog); err != nil {
			t.Fatal(err)
		}
	}
	var vars []pag.NodeID
	for _, d := range ev.DerefsThrough(ev.NumWaves() - 1) {
		vars = append(vars, d.Var)
	}
	return st, oracle, ev, vars
}

// TestAppendReopenReplaysJournal: a store that appended epochs reopens to
// exactly the evolved state — epoch count, journal replay through
// ApplyDelta, answers equal to a never-persisted engine fed the same
// waves.
func TestAppendReopenReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	st, oracle, ev, vars := evolveStore(t, dir, 3)
	wantEpoch := uint64(ev.NumWaves() - 1)
	if st.Epoch() != wantEpoch {
		t.Fatalf("store epoch %d, want %d", st.Epoch(), wantEpoch)
	}
	cfg := bigBudget
	cfg.CompactFraction = -1
	re, err := Open(dir, Options{Config: cfg, Ctxs: oracle.Ctxs()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", re.Epoch(), wantEpoch)
	}
	comparePts(t, "journal replay", vars, re.Engine(), oracle)
}

// TestCompactRotatesJournal: after Compact the journal is empty, the
// snapshot carries the merged graph at the same epoch, and reopening
// replays nothing but answers identically.
func TestCompactRotatesJournal(t *testing.T) {
	dir := t.TempDir()
	st, oracle, ev, vars := evolveStore(t, dir, 3)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	wantEpoch := uint64(ev.NumWaves() - 1)
	if st.Epoch() != wantEpoch {
		t.Fatalf("Compact moved the epoch to %d", st.Epoch())
	}
	if st.Engine().Overlay() != nil {
		t.Fatal("Compact left the overlay live")
	}

	jdata, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(jdata) != len(Magic)+4 {
		t.Errorf("rotated journal holds %d bytes, want bare header", len(jdata))
	}

	cfg := bigBudget
	cfg.CompactFraction = -1
	re, err := Open(dir, Options{Config: cfg, Ctxs: oracle.Ctxs()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", re.Epoch(), wantEpoch)
	}
	comparePts(t, "post-compact reopen", vars, re.Engine(), oracle)
}

// TestTornJournalTailRecoversPrefix: cutting the journal mid-record
// silently drops the last epoch — the reopened store answers like an
// engine that applied one wave fewer.
func TestTornJournalTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	st, _, ev, _ := evolveStore(t, dir, 3)
	st.Close()

	jpath := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := bigBudget
	cfg.CompactFraction = -1
	ctxs := new(intstack.Table)
	re, err := Open(dir, Options{Config: cfg, Ctxs: ctxs})
	if err != nil {
		t.Fatalf("torn tail must recover: %v", err)
	}
	defer re.Close()
	wantEpoch := uint64(ev.NumWaves() - 2)
	if re.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d (last record torn)", re.Epoch(), wantEpoch)
	}

	oracle := core.NewDynSum(ev.Base.G, cfg, ctxs)
	for k := 1; k <= int(wantEpoch); k++ {
		log, err := oracle.NewDeltaLog()
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.WaveLog(log, k); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.ApplyDelta(log); err != nil {
			t.Fatal(err)
		}
	}
	var vars []pag.NodeID
	for _, d := range ev.DerefsThrough(int(wantEpoch)) {
		vars = append(vars, d.Var)
	}
	comparePts(t, "torn tail", vars, re.Engine(), oracle)
}

// TestCorruptJournalRecordIsFatal: flipping a byte inside a non-final
// record is mid-journal corruption — Open must refuse with a typed
// *CorruptJournalError, never replay past it.
func TestCorruptJournalRecordIsFatal(t *testing.T) {
	dir := t.TempDir()
	st, _, _, _ := evolveStore(t, dir, 3)
	st.Close()

	jpath := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)+4+16+10] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(jpath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{Config: bigBudget})
	var ce *CorruptJournalError
	if !errors.As(err, &ce) {
		t.Fatalf("Open on corrupt journal: err = %v (%T), want *CorruptJournalError", err, err)
	}
	if ce.Record != 0 {
		t.Errorf("corruption reported at record %d, want 0", ce.Record)
	}
}

// TestSnapshotCorruptionTaxonomy drives decodeSnapshot through each
// damage class and asserts the typed-error contract.
func TestSnapshotCorruptionTaxonomy(t *testing.T) {
	prog := frozenProgram(23)
	dir := t.TempDir()
	st, err := Create(dir, prog, Options{Config: bigBudget})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	good, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSnapshot(good); err != nil {
		t.Fatalf("pristine snapshot does not decode: %v", err)
	}

	isCorrupt := func(t *testing.T, data []byte) *CorruptSnapshotError {
		t.Helper()
		_, err := decodeSnapshot(data)
		var ce *CorruptSnapshotError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v (%T), want *CorruptSnapshotError", err, err)
		}
		return ce
	}

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte("NOTASNAP"), good[len(Magic):]...)
		isCorrupt(t, bad)
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(Magic)] = 0xfe
		_, err := decodeSnapshot(bad)
		if !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("err = %v, want ErrSnapshotVersion", err)
		}
		var ce *CorruptSnapshotError
		if errors.As(err, &ce) {
			t.Errorf("version skew misclassified as corruption")
		}
	})
	t.Run("payload-bitrot", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[snapHeaderSize+sectionHdrSize+2] ^= 0x40 // inside the meta payload
		ce := isCorrupt(t, bad)
		if ce.Section != "meta" {
			t.Errorf("damage attributed to section %q, want meta", ce.Section)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(good) - 1, len(good) / 2, snapHeaderSize + 3, snapHeaderSize} {
			isCorrupt(t, good[:cut])
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		isCorrupt(t, append(append([]byte(nil), good...), 0xaa))
	})
	t.Run("short-header", func(t *testing.T) {
		isCorrupt(t, good[:4])
	})
}

// TestCreateOverwritesStaleStore: Create on a directory holding an older
// store must not let the old journal replay onto the new snapshot.
func TestCreateOverwritesStaleStore(t *testing.T) {
	dir := t.TempDir()
	st, _, _, _ := evolveStore(t, dir, 3)
	st.Close()

	prog := frozenProgram(24)
	ctxs := new(intstack.Table)
	opts := Options{Config: bigBudget, Ctxs: ctxs}
	st2, err := Create(dir, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	re, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen after re-Create: %v", err)
	}
	defer re.Close()
	if re.Epoch() != 0 {
		t.Errorf("re-created store reopened at epoch %d", re.Epoch())
	}
	if re.Program().G.NumNodes() != prog.G.NumNodes() {
		t.Errorf("re-created store reopened the old graph")
	}
}

// TestEncodeDecodeIsIdentity: decoding an encoded snapshot and
// re-encoding it reproduces the bytes — the codec has one canonical form.
func TestEncodeDecodeIsIdentity(t *testing.T) {
	prog := frozenProgram(25)
	img, err := prog.G.Image()
	if err != nil {
		t.Fatal(err)
	}
	s := &snapshot{epoch: 7, name: prog.Name, img: img,
		casts: prog.Casts, derefs: prog.Derefs, factories: prog.Factories}
	enc := encodeSnapshot(s)
	dec, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.epoch != 7 || dec.name != prog.Name {
		t.Errorf("decoded meta %d %q", dec.epoch, dec.name)
	}
	re := encodeSnapshot(dec)
	if string(re) != string(enc) {
		t.Errorf("re-encoded snapshot differs: %d vs %d bytes", len(re), len(enc))
	}
}

// TestStorePreservesBodyless pins the open-world half of recovery: a
// store built from a stripped graph must reopen with every bodyless mark
// intact — identical BodylessInfo records, blob nodes recognised — and a
// blended open-world engine on the recovered graph must answer exactly
// like one on the original. Dropping the section would be silent
// unsoundness: the recovered engine would answer its holes closed-world.
func TestStorePreservesBodyless(t *testing.T) {
	ow, ok := benchgen.OpenWorldProfileByName("avrora-ow25")
	if !ok {
		t.Fatal("avrora-ow25 profile missing")
	}
	bench, err := benchgen.GenerateOpenWorld(ow, 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := bench.Stripped

	dir := t.TempDir()
	opts := Options{Config: bigBudget, Ctxs: new(intstack.Table)}
	st, err := Create(dir, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	g, rg := prog.G, re.Program().G
	if rg.NumBodyless() != g.NumBodyless() {
		t.Fatalf("reopened NumBodyless = %d, want %d", rg.NumBodyless(), g.NumBodyless())
	}
	for _, m := range g.BodylessMethods() {
		want, _ := g.Bodyless(m)
		got, ok := rg.Bodyless(m)
		if !ok {
			t.Fatalf("method %s lost its bodyless mark", g.MethodInfo(m).Name)
		}
		if got.Ret != want.Ret || got.BlobObj != want.BlobObj || got.BlobVar != want.BlobVar ||
			len(got.Formals) != len(want.Formals) {
			t.Fatalf("method %s info = %+v, want %+v", g.MethodInfo(m).Name, got, want)
		}
		for i := range want.Formals {
			if got.Formals[i] != want.Formals[i] {
				t.Fatalf("method %s formal %d = %d, want %d",
					g.MethodInfo(m).Name, i, got.Formals[i], want.Formals[i])
			}
		}
		if !rg.IsBlobObject(got.BlobObj) {
			t.Fatalf("method %s blob object not recognised after reopen", g.MethodInfo(m).Name)
		}
	}

	st.Engine().EnableOpenWorld(core.PolicyBlended)
	re.Engine().EnableOpenWorld(core.PolicyBlended)
	comparePts(t, "openworld reopen", queryVars(prog, 40), re.Engine(), st.Engine())
}

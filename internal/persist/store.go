package persist

import (
	"fmt"
	"os"
	"path/filepath"

	"dynsum/internal/core"
	"dynsum/internal/delta"
	"dynsum/internal/intstack"
	"dynsum/internal/pag"
	"dynsum/internal/persist/journal"
)

// Options configures a Store. The zero value is usable: fsync on every
// journal append, default engine config, summaries persisted on Compact.
type Options struct {
	// Sync selects the journal's fsync policy (default SyncAlways).
	Sync journal.SyncPolicy
	// Config is the engine configuration. Replay determinism: reopen with
	// the same Config the store appended under, or auto-compaction
	// thresholds may replay differently (harmless for answers, but the
	// engine's compaction count will differ from the dead process's).
	Config core.Config
	// DisableCache / DisableCondense carry the engine ablation toggles
	// through a reopen.
	DisableCache    bool
	DisableCondense bool
	// SkipSummaries leaves the summary cache out of snapshots written by
	// Compact, trading warm-start time for snapshot size.
	SkipSummaries bool
	// Ctxs optionally shares a context-stack table with other engines so
	// their points-to sets are directly comparable (see core.NewDynSum);
	// nil gives the engine a private table.
	Ctxs *intstack.Table
}

// Store is a program graph with crash-safe residence on disk: a snapshot
// file plus an append-only journal of applied deltas. Its Engine answers
// queries as usual; Append applies an epoch and journals it durably;
// Compact rotates the journal into a fresh snapshot. Like the engine's
// own mutators, Store methods must not race in-flight queries.
type Store struct {
	dir  string
	opts Options
	prog *pag.Program
	eng  *core.DynSum
	jr   *journal.Journal

	// epoch counts applied deltas since the store was created — snapshot
	// epoch plus journal records after it. It is the store's durability
	// clock, independent of the overlay's internal epoch (which resets at
	// every compaction).
	epoch uint64
}

// Create initialises dir as a store for prog: an epoch-0 snapshot and an
// empty journal, both durable before return. prog.G must be frozen. The
// directory is created if needed; existing store files are overwritten.
func Create(dir string, prog *pag.Program, opts Options) (*Store, error) {
	img, err := prog.G.Image()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snap := &snapshot{
		epoch:     0,
		name:      prog.Name,
		img:       img,
		casts:     prog.Casts,
		derefs:    prog.Derefs,
		factories: prog.Factories,
	}
	if err := writeSnapshot(dir, snap); err != nil {
		return nil, err
	}
	jr, recs, err := journal.Open(filepath.Join(dir, journalFile), opts.Sync)
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 {
		// Stale journal from a previous store in this dir: the fresh
		// snapshot is epoch 0, so nothing in it may replay.
		if err := jr.Reset(); err != nil {
			jr.Close()
			return nil, err
		}
	}
	s := &Store{dir: dir, opts: opts, prog: prog, jr: jr}
	s.eng = s.newEngine(prog.G)
	return s, nil
}

// Open recovers the store in dir: the snapshot is loaded with every
// checksum and structural invariant verified, a fresh engine is built
// (with the persisted summary cache, when present), and the journal is
// replayed epoch by epoch through ApplyDelta. Records at or below the
// snapshot's epoch are skipped — the leftovers of a crash between
// snapshot rotation and journal reset — and the rest must be
// consecutive. The recovered engine passes CheckIntegrity before Open
// returns.
func Open(dir string, opts Options) (*Store, error) {
	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	g, err := pag.FromImage(snap.img)
	if err != nil {
		return nil, corruptSection("csr", err)
	}
	if err := checkSites(snap, g); err != nil {
		return nil, err
	}
	prog := pag.NewProgram(snap.name, g)
	prog.Casts = snap.casts
	prog.Derefs = snap.derefs
	prog.Factories = snap.factories

	s := &Store{dir: dir, opts: opts, prog: prog, epoch: snap.epoch}
	s.eng = s.newEngine(g)
	if err := s.eng.ImportSummaries(snap.cache); err != nil {
		return nil, corruptSection("cache", err)
	}

	jr, recs, err := journal.Open(filepath.Join(dir, journalFile), opts.Sync)
	if err != nil {
		return nil, err
	}
	for i, rec := range recs {
		if rec.Epoch <= snap.epoch {
			continue // pre-rotation leftover; the snapshot already holds it
		}
		if rec.Epoch != s.epoch+1 {
			jr.Close()
			return nil, &CorruptJournalError{Path: jr.Path(), Record: i, Offset: -1,
				Reason: fmt.Sprintf("epoch %d out of sequence (want %d)", rec.Epoch, s.epoch+1)}
		}
		l, err := delta.DecodeLog(rec.Payload)
		if err != nil {
			jr.Close()
			return nil, &CorruptJournalError{Path: jr.Path(), Record: i, Offset: -1,
				Reason: fmt.Sprintf("undecodable delta log: %v", err)}
		}
		if _, err := s.eng.ApplyDelta(l); err != nil {
			jr.Close()
			return nil, &CorruptJournalError{Path: jr.Path(), Record: i, Offset: -1,
				Reason: fmt.Sprintf("delta log does not replay: %v", err)}
		}
		s.epoch++
	}
	s.rebindProgram()
	if err := s.eng.CheckIntegrity(); err != nil {
		jr.Close()
		return nil, fmt.Errorf("persist: recovered engine fails integrity check: %w", err)
	}
	s.jr = jr
	return s, nil
}

// Append applies one epoch of program changes and journals it: the log is
// encoded (logs are single-use — ApplyDelta consumes them), applied to
// the engine, then appended to the journal under the next epoch number.
// When Append returns nil the epoch is as durable as the sync policy
// promises; on error the journal holds at worst a torn tail that
// recovery truncates, so an unacknowledged epoch never replays.
func (s *Store) Append(l *delta.Log) (core.DeltaResult, error) {
	payload := l.AppendBinary(nil)
	res, err := s.eng.ApplyDelta(l)
	if err != nil {
		return res, err
	}
	s.rebindProgram()
	if err := s.jr.Append(s.epoch+1, payload); err != nil {
		return res, fmt.Errorf("persist: epoch %d applied in memory but not journaled: %w", s.epoch+1, err)
	}
	s.epoch++
	return res, nil
}

// Compact rotates the store: the engine's overlay (if any) is merged into
// a fresh frozen graph, a new snapshot at the current epoch is installed
// atomically — including the summary cache, unless Options.SkipSummaries
// — and the journal is reset. A crash anywhere in between recovers: before
// the rename the old snapshot and full journal still replay; after the
// rename but before the reset, the stale journal records carry epochs at
// or below the new snapshot's and are skipped.
func (s *Store) Compact() error {
	if s.eng.Overlay() != nil {
		if err := s.eng.Compact(); err != nil {
			return err
		}
		s.rebindProgram()
	}
	img, err := s.eng.Graph().Image()
	if err != nil {
		return err
	}
	snap := &snapshot{
		epoch:     s.epoch,
		name:      s.prog.Name,
		img:       img,
		casts:     s.prog.Casts,
		derefs:    s.prog.Derefs,
		factories: s.prog.Factories,
	}
	if !s.opts.SkipSummaries {
		snap.cache = s.eng.ExportSummaries()
	}
	if err := writeSnapshot(s.dir, snap); err != nil {
		return err
	}
	return s.jr.Reset()
}

// rebindProgram repoints the store's Program at the engine's current
// graph after a mutator may have swapped it (Compact, or auto-compaction
// inside ApplyDelta). IDs are stable across compaction, so the site
// tables carry over; the Program is rebuilt so its lazy indexes do not
// outlive the graph they were computed on.
func (s *Store) rebindProgram() {
	if s.prog.G == s.eng.Graph() {
		return
	}
	p := pag.NewProgram(s.prog.Name, s.eng.Graph())
	p.Casts = s.prog.Casts
	p.Derefs = s.prog.Derefs
	p.Factories = s.prog.Factories
	s.prog = p
}

// Engine returns the store's query engine.
func (s *Store) Engine() *core.DynSum { return s.eng }

// Program returns the store's program view (graph plus client sites).
// Retrieve it again after Append or Compact — mutators may rebind it to
// a compacted graph.
func (s *Store) Program() *pag.Program { return s.prog }

// Epoch returns how many delta epochs the store has applied since
// creation.
func (s *Store) Epoch() uint64 { return s.epoch }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the journal. Safe to call twice, and safe to call on a
// store whose last operation failed mid-write.
func (s *Store) Close() error {
	if s.jr == nil {
		return nil
	}
	jr := s.jr
	s.jr = nil
	return jr.Close()
}

// checkSites range-checks the snapshot's client site tables against the
// rebuilt graph — the one image-level validation FromImage cannot do
// because sites live on the Program, not the Graph.
func checkSites(s *snapshot, g *pag.Graph) error {
	n, nc, nm := g.NumNodes(), g.NumClasses(), g.NumMethods()
	for i, c := range s.casts {
		if c.Var < 0 || int(c.Var) >= n || c.Target < 0 || int(c.Target) >= nc {
			return corruptSection("sites", fmt.Errorf("cast site %d references out-of-range IDs", i))
		}
	}
	for i, d := range s.derefs {
		if d.Var < 0 || int(d.Var) >= n {
			return corruptSection("sites", fmt.Errorf("deref site %d references node %d out of range", i, d.Var))
		}
	}
	for i, f := range s.factories {
		if f.Method < 0 || int(f.Method) >= nm || f.Ret < 0 || int(f.Ret) >= n {
			return corruptSection("sites", fmt.Errorf("factory site %d references out-of-range IDs", i))
		}
	}
	return nil
}

func (s *Store) newEngine(g *pag.Graph) *core.DynSum {
	eng := core.NewDynSum(g, s.opts.Config, s.opts.Ctxs)
	eng.DisableCache = s.opts.DisableCache
	eng.DisableCondense = s.opts.DisableCondense
	return eng
}

// Package persist is the crash-safe persistence layer: it serialises a
// frozen program graph (and optionally the engine's summary cache) into a
// single checksummed snapshot file, pairs it with an append-only journal
// of delta logs (internal/persist/journal), and recovers the exact engine
// state after a crash by loading the snapshot and replaying the journal
// epoch by epoch (DESIGN.md §13).
//
// Snapshot layout (little-endian): the magic "DSUMSNAP", a u32 format
// version, and a u32 section count; then each section as
//
//	u32 kind | u32 payloadLen | u32 crc32(payload) | payload
//
// Every section carries its own CRC, so damage is localised on read.
// Snapshots are written atomically — temp file, fsync, rename, directory
// fsync — so a crash mid-write leaves the previous snapshot untouched and
// at worst a garbage temp file that the next write replaces.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"dynsum/internal/core"
	"dynsum/internal/faultinject"
	"dynsum/internal/intstack"
	"dynsum/internal/pag"
)

// Magic opens every snapshot file; Version guards the section layout.
const (
	Magic   = "DSUMSNAP"
	Version = 1

	snapHeaderSize = len(Magic) + 4 + 4 // magic + u32 version + u32 section count
	sectionHdrSize = 4 + 4 + 4          // u32 kind + u32 len + u32 crc
	maxSectionKind = secBodyless
)

// Section kinds, in required file order. secCache is optional (a snapshot
// of a cold engine omits it) and so is secBodyless (a closed-world graph
// has no bodyless-method table, and pre-open-world snapshots predate the
// section); everything else must appear exactly once.
const (
	secMeta = iota + 1
	secClasses
	secFields
	secMethods
	secCallSites
	secNodes
	secCSR
	secCond
	secSites
	secCache
	secBodyless
)

var sectionNames = [maxSectionKind + 1]string{
	secMeta: "meta", secClasses: "classes", secFields: "fields",
	secMethods: "methods", secCallSites: "callsites", secNodes: "nodes",
	secCSR: "csr", secCond: "cond", secSites: "sites", secCache: "cache",
	secBodyless: "bodyless",
}

// snapshot is the decoded (or to-be-encoded) content of a snapshot file.
type snapshot struct {
	epoch     uint64
	name      string
	img       *pag.FrozenImage
	casts     []pag.CastSite
	derefs    []pag.DerefSite
	factories []pag.FactorySite
	cache     *core.SummarySnapshot // nil when not persisted
}

// --- encoding ---

type section struct {
	kind    uint32
	payload []byte
}

func encodeSections(s *snapshot) []section {
	img := s.img
	var secs []section
	add := func(kind uint32, payload []byte) { secs = append(secs, section{kind, payload}) }

	var b []byte
	b = appendU64(b, s.epoch)
	b = appendString(b, s.name)
	b = appendU32(b, uint32(len(img.Nodes)))
	b = appendU32(b, uint32(len(img.Methods)))
	b = appendU32(b, uint32(len(img.Classes)))
	b = appendU32(b, uint32(len(img.CallSites)))
	b = appendU32(b, uint32(len(img.Fields)))
	add(secMeta, b)

	b = appendU32(nil, uint32(len(img.Classes)))
	for _, c := range img.Classes {
		b = appendString(b, c.Name)
		b = appendU32(b, uint32(c.Parent))
	}
	add(secClasses, b)

	b = appendU32(nil, uint32(len(img.Fields)))
	for _, f := range img.Fields {
		b = appendString(b, f)
	}
	add(secFields, b)

	b = appendU32(nil, uint32(len(img.Methods)))
	for _, m := range img.Methods {
		b = appendString(b, m.Name)
		b = appendU32(b, uint32(m.Class))
	}
	add(secMethods, b)

	b = appendU32(nil, uint32(len(img.CallSites)))
	for _, cs := range img.CallSites {
		b = appendU32(b, uint32(cs.Caller))
		b = appendString(b, cs.Name)
		b = appendU32(b, uint32(len(cs.Targets)))
		for _, t := range cs.Targets {
			b = appendU32(b, uint32(t))
		}
	}
	add(secCallSites, b)

	b = appendU32(nil, uint32(len(img.Nodes)))
	for _, n := range img.Nodes {
		b = append(b, byte(n.Kind))
		b = appendU32(b, uint32(n.Method))
		b = appendU32(b, uint32(n.Class))
		b = appendString(b, n.Name)
	}
	add(secNodes, b)

	b = appendEdges(nil, img.OutEdges)
	b = appendI32s(b, img.OutStart)
	b = appendI32s(b, img.OutSplit)
	b = appendEdges(b, img.InEdges)
	b = appendI32s(b, img.InStart)
	b = appendI32s(b, img.InSplit)
	b = appendBytes(b, img.Flags)
	add(secCSR, b)

	b = nil
	if img.CondTrivial {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	for _, v := range [...]int{
		img.CondStats.Nodes, img.CondStats.Reps, img.CondStats.SCCs,
		img.CondStats.LargestSCC, img.CondStats.CollapsedNodes,
		img.CondStats.LocalEdges, img.CondStats.CondensedLocalEdges,
		img.CondStats.GlobalEdges, img.CondStats.CondensedGlobalEdges,
	} {
		b = appendU64(b, uint64(v))
	}
	if !img.CondTrivial {
		rep := make([]int32, len(img.CondRep))
		for i, r := range img.CondRep {
			rep[i] = int32(r)
		}
		b = appendI32s(b, rep)
		b = appendEdges(b, img.CondOutEdges)
		b = appendI32s(b, img.CondOutStart)
		b = appendI32s(b, img.CondOutSplit)
		b = appendEdges(b, img.CondInEdges)
		b = appendI32s(b, img.CondInStart)
		b = appendI32s(b, img.CondInSplit)
		b = appendBytes(b, img.CondFlags)
	}
	add(secCond, b)

	b = appendU32(nil, uint32(len(s.casts)))
	for _, c := range s.casts {
		b = appendU32(b, uint32(c.Var))
		b = appendU32(b, uint32(c.Target))
		b = appendString(b, c.Name)
	}
	b = appendU32(b, uint32(len(s.derefs)))
	for _, d := range s.derefs {
		b = appendU32(b, uint32(d.Var))
		b = appendString(b, d.Name)
	}
	b = appendU32(b, uint32(len(s.factories)))
	for _, f := range s.factories {
		b = appendU32(b, uint32(f.Method))
		b = appendU32(b, uint32(f.Ret))
		b = appendString(b, f.Name)
	}
	add(secSites, b)

	// The open-world bodyless-method table (DESIGN.md §15): without it a
	// recovered store would silently answer its holes closed-world. Omitted
	// for closed-world graphs so their snapshots are byte-identical to
	// pre-open-world ones.
	if len(img.Bodyless) > 0 {
		b = appendU32(nil, uint32(len(img.Bodyless)))
		for _, bd := range img.Bodyless {
			b = appendU32(b, uint32(bd.Method))
			b = appendU32(b, uint32(bd.BlobObj))
			b = appendU32(b, uint32(bd.BlobVar))
			b = appendU32(b, uint32(bd.Ret))
			b = appendU32(b, uint32(len(bd.Formals)))
			for _, f := range bd.Formals {
				b = appendU32(b, uint32(f))
			}
		}
		add(secBodyless, b)
	}

	if c := s.cache; c != nil {
		b = appendU32(nil, uint32(c.CacheMode))
		b = appendI32s(b, c.StackParents)
		b = appendI32s(b, c.StackSyms)
		b = appendU32(b, uint32(len(c.Entries)))
		for _, e := range c.Entries {
			b = appendU32(b, uint32(e.Node))
			b = appendU32(b, uint32(e.Fs))
			b = append(b, e.St)
			b = appendU32(b, uint32(e.Method))
			b = appendU32(b, uint32(len(e.Objs)))
			for _, o := range e.Objs {
				b = appendU32(b, uint32(o))
			}
			b = appendU32(b, uint32(len(e.Frontier)))
			for _, fr := range e.Frontier {
				b = appendU32(b, uint32(fr.Node))
				b = appendU32(b, uint32(fr.Fs))
				b = append(b, uint8(fr.St))
			}
		}
		add(secCache, b)
	}
	return secs
}

// encodeSnapshot renders the complete snapshot file as one byte slice —
// the pure counterpart of writeSnapshot, shared with the fuzz round trip.
func encodeSnapshot(s *snapshot) []byte {
	secs := encodeSections(s)
	out := make([]byte, 0, snapHeaderSize)
	out = append(out, Magic...)
	out = appendU32(out, Version)
	out = appendU32(out, uint32(len(secs)))
	for _, sec := range secs {
		out = appendU32(out, sec.kind)
		out = appendU32(out, uint32(len(sec.payload)))
		out = appendU32(out, crc32.ChecksumIEEE(sec.payload))
		out = append(out, sec.payload...)
	}
	return out
}

// --- decoding ---

// decodeSnapshot parses and verifies a snapshot file image: framing,
// every section CRC, required sections present exactly once, and the
// structural validation FromImage / ImportSummaries perform later still
// applies on top. All failures are *CorruptSnapshotError, except a
// version mismatch, which wraps ErrSnapshotVersion.
func decodeSnapshot(data []byte) (*snapshot, error) {
	if len(data) < snapHeaderSize {
		return nil, corrupt(0, "file too short for header (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, corrupt(0, "bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[len(Magic):]); v != Version {
		return nil, fmt.Errorf("persist: snapshot has format version %d, this build reads %d: %w",
			v, Version, ErrSnapshotVersion)
	}
	count := binary.LittleEndian.Uint32(data[len(Magic)+4:])

	var payloads [maxSectionKind + 1][]byte
	var seen [maxSectionKind + 1]bool
	off := snapHeaderSize
	for i := uint32(0); i < count; i++ {
		if len(data)-off < sectionHdrSize {
			return nil, corrupt(int64(off), "truncated section header (%d of %d)", i+1, count)
		}
		kind := binary.LittleEndian.Uint32(data[off:])
		plen := binary.LittleEndian.Uint32(data[off+4:])
		sum := binary.LittleEndian.Uint32(data[off+8:])
		off += sectionHdrSize
		if kind < secMeta || kind > maxSectionKind {
			return nil, corrupt(int64(off-sectionHdrSize), "unknown section kind %d", kind)
		}
		if seen[kind] {
			return nil, corrupt(int64(off-sectionHdrSize), "duplicate %s section", sectionNames[kind])
		}
		if int64(plen) > int64(len(data)-off) {
			return nil, corrupt(int64(off), "%s section truncated (%d of %d payload bytes)",
				sectionNames[kind], len(data)-off, plen)
		}
		payload := data[off : off+int(plen)]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, &CorruptSnapshotError{Section: sectionNames[kind], Offset: int64(off),
				Reason: fmt.Sprintf("CRC mismatch (stored %08x, computed %08x)", sum, got)}
		}
		seen[kind] = true
		payloads[kind] = payload
		off += int(plen)
	}
	if off != len(data) {
		return nil, corrupt(int64(off), "%d trailing bytes after last section", len(data)-off)
	}
	for kind := secMeta; kind < secCache; kind++ {
		if !seen[kind] {
			return nil, corrupt(-1, "missing %s section", sectionNames[kind])
		}
	}

	s := &snapshot{img: &pag.FrozenImage{}}
	img := s.img

	// meta
	var numNodes, numMethods, numClasses, numCallSites, numFields int
	if err := func() error {
		r := &reader{data: payloads[secMeta]}
		var err error
		if s.epoch, err = r.u64(); err != nil {
			return err
		}
		if s.name, err = r.str(); err != nil {
			return err
		}
		for _, dst := range []*int{&numNodes, &numMethods, &numClasses, &numCallSites, &numFields} {
			v, err := r.u32()
			if err != nil {
				return err
			}
			*dst = int(v)
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("meta", err)
	}

	if err := func() error {
		r := &reader{data: payloads[secClasses]}
		n, err := r.count(2)
		if err != nil {
			return err
		}
		img.Classes = make([]pag.Class, n)
		for i := range img.Classes {
			if img.Classes[i].Name, err = r.str(); err != nil {
				return err
			}
			p, err := r.i32()
			if err != nil {
				return err
			}
			img.Classes[i].Parent = pag.ClassID(p)
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("classes", err)
	}

	if err := func() error {
		r := &reader{data: payloads[secFields]}
		n, err := r.count(1)
		if err != nil {
			return err
		}
		img.Fields = make([]string, n)
		for i := range img.Fields {
			if img.Fields[i], err = r.str(); err != nil {
				return err
			}
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("fields", err)
	}

	if err := func() error {
		r := &reader{data: payloads[secMethods]}
		n, err := r.count(1 + 4)
		if err != nil {
			return err
		}
		img.Methods = make([]pag.Method, n)
		for i := range img.Methods {
			if img.Methods[i].Name, err = r.str(); err != nil {
				return err
			}
			c, err := r.i32()
			if err != nil {
				return err
			}
			img.Methods[i].Class = pag.ClassID(c)
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("methods", err)
	}

	if err := func() error {
		r := &reader{data: payloads[secCallSites]}
		n, err := r.count(4 + 1 + 4)
		if err != nil {
			return err
		}
		img.CallSites = make([]pag.CallSite, n)
		for i := range img.CallSites {
			caller, err := r.i32()
			if err != nil {
				return err
			}
			img.CallSites[i].Caller = pag.MethodID(caller)
			if img.CallSites[i].Name, err = r.str(); err != nil {
				return err
			}
			nt, err := r.count(4)
			if err != nil {
				return err
			}
			if nt > 0 {
				ts := make([]pag.MethodID, nt)
				for j := range ts {
					t, err := r.i32()
					if err != nil {
						return err
					}
					ts[j] = pag.MethodID(t)
				}
				img.CallSites[i].Targets = ts
			}
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("callsites", err)
	}

	if err := func() error {
		r := &reader{data: payloads[secNodes]}
		n, err := r.count(1 + 4 + 4 + 1)
		if err != nil {
			return err
		}
		img.Nodes = make([]pag.Node, n)
		for i := range img.Nodes {
			k, err := r.u8()
			if err != nil {
				return err
			}
			if pag.NodeKind(k) > pag.Object {
				return fmt.Errorf("node %d has invalid kind %d", i, k)
			}
			img.Nodes[i].Kind = pag.NodeKind(k)
			m, err := r.i32()
			if err != nil {
				return err
			}
			c, err := r.i32()
			if err != nil {
				return err
			}
			img.Nodes[i].Method = pag.MethodID(m)
			img.Nodes[i].Class = pag.ClassID(c)
			if img.Nodes[i].Name, err = r.str(); err != nil {
				return err
			}
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("nodes", err)
	}

	if err := func() error {
		r := &reader{data: payloads[secCSR]}
		var err error
		if img.OutEdges, err = r.edges(); err != nil {
			return err
		}
		if img.OutStart, err = r.i32s(); err != nil {
			return err
		}
		if img.OutSplit, err = r.i32s(); err != nil {
			return err
		}
		if img.InEdges, err = r.edges(); err != nil {
			return err
		}
		if img.InStart, err = r.i32s(); err != nil {
			return err
		}
		if img.InSplit, err = r.i32s(); err != nil {
			return err
		}
		if img.Flags, err = r.bytes(); err != nil {
			return err
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("csr", err)
	}

	if err := func() error {
		r := &reader{data: payloads[secCond]}
		trivial, err := r.u8()
		if err != nil {
			return err
		}
		if trivial > 1 {
			return fmt.Errorf("trivial flag %d is not a bool", trivial)
		}
		img.CondTrivial = trivial == 1
		for _, dst := range []*int{
			&img.CondStats.Nodes, &img.CondStats.Reps, &img.CondStats.SCCs,
			&img.CondStats.LargestSCC, &img.CondStats.CollapsedNodes,
			&img.CondStats.LocalEdges, &img.CondStats.CondensedLocalEdges,
			&img.CondStats.GlobalEdges, &img.CondStats.CondensedGlobalEdges,
		} {
			v, err := r.u64()
			if err != nil {
				return err
			}
			*dst = int(v)
		}
		if !img.CondTrivial {
			rep, err := r.i32s()
			if err != nil {
				return err
			}
			img.CondRep = make([]pag.NodeID, len(rep))
			for i, v := range rep {
				img.CondRep[i] = pag.NodeID(v)
			}
			if img.CondOutEdges, err = r.edges(); err != nil {
				return err
			}
			if img.CondOutStart, err = r.i32s(); err != nil {
				return err
			}
			if img.CondOutSplit, err = r.i32s(); err != nil {
				return err
			}
			if img.CondInEdges, err = r.edges(); err != nil {
				return err
			}
			if img.CondInStart, err = r.i32s(); err != nil {
				return err
			}
			if img.CondInSplit, err = r.i32s(); err != nil {
				return err
			}
			if img.CondFlags, err = r.bytes(); err != nil {
				return err
			}
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("cond", err)
	}

	if err := func() error {
		r := &reader{data: payloads[secSites]}
		nc, err := r.count(4 + 4 + 1)
		if err != nil {
			return err
		}
		s.casts = make([]pag.CastSite, nc)
		for i := range s.casts {
			v, err := r.i32()
			if err != nil {
				return err
			}
			t, err := r.i32()
			if err != nil {
				return err
			}
			s.casts[i].Var = pag.NodeID(v)
			s.casts[i].Target = pag.ClassID(t)
			if s.casts[i].Name, err = r.str(); err != nil {
				return err
			}
		}
		nd, err := r.count(4 + 1)
		if err != nil {
			return err
		}
		s.derefs = make([]pag.DerefSite, nd)
		for i := range s.derefs {
			v, err := r.i32()
			if err != nil {
				return err
			}
			s.derefs[i].Var = pag.NodeID(v)
			if s.derefs[i].Name, err = r.str(); err != nil {
				return err
			}
		}
		nf, err := r.count(4 + 4 + 1)
		if err != nil {
			return err
		}
		s.factories = make([]pag.FactorySite, nf)
		for i := range s.factories {
			m, err := r.i32()
			if err != nil {
				return err
			}
			ret, err := r.i32()
			if err != nil {
				return err
			}
			s.factories[i].Method = pag.MethodID(m)
			s.factories[i].Ret = pag.NodeID(ret)
			if s.factories[i].Name, err = r.str(); err != nil {
				return err
			}
		}
		return r.done()
	}(); err != nil {
		return nil, corruptSection("sites", err)
	}

	if payloads[secBodyless] != nil {
		if err := func() error {
			r := &reader{data: payloads[secBodyless]}
			n, err := r.count(4 + 4 + 4 + 4 + 4)
			if err != nil {
				return err
			}
			img.Bodyless = make([]pag.BodylessImage, n)
			for i := range img.Bodyless {
				bd := &img.Bodyless[i]
				m, err := r.i32()
				if err != nil {
					return err
				}
				obj, err := r.i32()
				if err != nil {
					return err
				}
				v, err := r.i32()
				if err != nil {
					return err
				}
				ret, err := r.i32()
				if err != nil {
					return err
				}
				bd.Method = pag.MethodID(m)
				bd.BlobObj = pag.NodeID(obj)
				bd.BlobVar = pag.NodeID(v)
				bd.Ret = pag.NodeID(ret)
				nf, err := r.count(4)
				if err != nil {
					return err
				}
				if nf > 0 {
					bd.Formals = make([]pag.NodeID, nf)
					for j := range bd.Formals {
						f, err := r.i32()
						if err != nil {
							return err
						}
						bd.Formals[j] = pag.NodeID(f)
					}
				}
			}
			// Range and duplicate validation happens in pag.FromImage,
			// which rejects malformed records with typed errors.
			return r.done()
		}(); err != nil {
			return nil, corruptSection("bodyless", err)
		}
	}

	if payloads[secCache] != nil {
		c := &core.SummarySnapshot{}
		if err := func() error {
			r := &reader{data: payloads[secCache]}
			mode, err := r.i32()
			if err != nil {
				return err
			}
			c.CacheMode = mode
			if c.StackParents, err = r.i32s(); err != nil {
				return err
			}
			if c.StackSyms, err = r.i32s(); err != nil {
				return err
			}
			n, err := r.count(4 + 4 + 1 + 4 + 4 + 4)
			if err != nil {
				return err
			}
			c.Entries = make([]core.SummaryEntry, n)
			for i := range c.Entries {
				e := &c.Entries[i]
				node, err := r.i32()
				if err != nil {
					return err
				}
				fs, err := r.i32()
				if err != nil {
					return err
				}
				st, err := r.u8()
				if err != nil {
					return err
				}
				method, err := r.i32()
				if err != nil {
					return err
				}
				e.Node = pag.NodeID(node)
				e.Fs = intstack.ID(fs)
				e.St = st
				e.Method = pag.MethodID(method)
				no, err := r.count(4)
				if err != nil {
					return err
				}
				if no > 0 {
					e.Objs = make([]pag.NodeID, no)
					for j := range e.Objs {
						o, err := r.i32()
						if err != nil {
							return err
						}
						e.Objs[j] = pag.NodeID(o)
					}
				}
				nf, err := r.count(4 + 4 + 1)
				if err != nil {
					return err
				}
				if nf > 0 {
					e.Frontier = make([]core.FrontierState, nf)
					for j := range e.Frontier {
						fn, err := r.i32()
						if err != nil {
							return err
						}
						ffs, err := r.i32()
						if err != nil {
							return err
						}
						fst, err := r.u8()
						if err != nil {
							return err
						}
						if fst > uint8(core.S2) {
							return fmt.Errorf("entry %d frontier state %d invalid", i, fst)
						}
						e.Frontier[j] = core.FrontierState{
							Node: pag.NodeID(fn), Fs: intstack.ID(ffs), St: core.State(fst),
						}
					}
				}
			}
			return r.done()
		}(); err != nil {
			return nil, corruptSection("cache", err)
		}
		s.cache = c
	}

	// Cross-check the meta counts against the decoded tables: a snapshot
	// whose sections disagree about sizes is corrupt even if every CRC
	// verifies (e.g. sections spliced together from two files).
	for _, chk := range []struct {
		name string
		want int
		got  int
	}{
		{"nodes", numNodes, len(img.Nodes)},
		{"methods", numMethods, len(img.Methods)},
		{"classes", numClasses, len(img.Classes)},
		{"callsites", numCallSites, len(img.CallSites)},
		{"fields", numFields, len(img.Fields)},
	} {
		if chk.want != chk.got {
			return nil, corruptSection("meta",
				fmt.Errorf("meta declares %d %s, %s section holds %d", chk.want, chk.name, chk.name, chk.got))
		}
	}
	return s, nil
}

// --- file IO ---

const (
	snapshotFile = "snapshot.dsum"
	snapshotTemp = "snapshot.dsum.tmp"
	journalFile  = "journal.dsum"
)

// writeSnapshot atomically installs s as dir's snapshot: sections are
// written to a temp file (SnapshotWrite fires before each write), the
// temp is fsynced and renamed over the live name (SnapshotRename fires
// just before), and the directory is fsynced so the rename itself is
// durable. A crash anywhere in here leaves the previous snapshot file
// (if any) fully intact.
func writeSnapshot(dir string, s *snapshot) error {
	secs := encodeSections(s)
	tmp := filepath.Join(dir, snapshotTemp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	writeChunk := func(chunk []byte) error {
		faultinject.Fire(faultinject.SnapshotWrite)
		_, err := f.Write(chunk)
		return err
	}

	hdr := make([]byte, 0, snapHeaderSize)
	hdr = append(hdr, Magic...)
	hdr = appendU32(hdr, Version)
	hdr = appendU32(hdr, uint32(len(secs)))
	if err := writeChunk(hdr); err != nil {
		f.Close()
		return err
	}
	for _, sec := range secs {
		shdr := appendU32(nil, sec.kind)
		shdr = appendU32(shdr, uint32(len(sec.payload)))
		shdr = appendU32(shdr, crc32.ChecksumIEEE(sec.payload))
		if err := writeChunk(append(shdr, sec.payload...)); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	faultinject.Fire(faultinject.SnapshotRename)
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readSnapshot loads and fully verifies dir's snapshot file.
func readSnapshot(dir string) (*snapshot, error) {
	path := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := decodeSnapshot(data)
	if err != nil {
		if ce, ok := err.(*CorruptSnapshotError); ok {
			ce.Path = path
		}
		return nil, err
	}
	return s, nil
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

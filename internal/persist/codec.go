package persist

import (
	"encoding/binary"
	"fmt"

	"dynsum/internal/pag"
)

// Wire primitives shared by the snapshot sections: little-endian
// fixed-width integers, u8-or-u32 length-prefixed strings, and
// count-prefixed arrays. The reader is panic-free on arbitrary input —
// every read is bounds-checked and every count is validated against the
// remaining bytes before allocation.

func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

func appendString(dst []byte, s string) []byte {
	if len(s) < 255 {
		dst = append(dst, byte(len(s)))
	} else {
		dst = append(dst, 255)
		dst = appendU32(dst, uint32(len(s)))
	}
	return append(dst, s...)
}

func appendI32s(dst []byte, vs []int32) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendU32(dst, uint32(v))
	}
	return dst
}

func appendBytes(dst []byte, bs []byte) []byte {
	dst = appendU32(dst, uint32(len(bs)))
	return append(dst, bs...)
}

const edgeWireSize = 4 + 4 + 1 + 4

func appendEdges(dst []byte, es []pag.Edge) []byte {
	dst = appendU32(dst, uint32(len(es)))
	for _, e := range es {
		dst = appendU32(dst, uint32(e.Src))
		dst = appendU32(dst, uint32(e.Dst))
		dst = append(dst, byte(e.Kind))
		dst = appendU32(dst, uint32(e.Label))
	}
	return dst
}

// reader is the bounds-checked decoder cursor over one section payload.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) u8() (uint8, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("truncated at offset %d", r.off)
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("truncated at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("truncated at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) i32() (int32, error) {
	v, err := r.u32()
	return int32(v), err
}

// count reads an element count and verifies that many elements of at
// least minSize bytes can still follow.
func (r *reader) count(minSize int) (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n < 0 || n*minSize > r.remaining() {
		return 0, fmt.Errorf("count %d exceeds %d remaining bytes", v, r.remaining())
	}
	return n, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	ln := int(n)
	if ln == 255 {
		if ln, err = r.count(1); err != nil {
			return "", err
		}
	}
	if r.remaining() < ln {
		return "", fmt.Errorf("string truncated at offset %d", r.off)
	}
	s := string(r.data[r.off : r.off+ln])
	r.off += ln
	return s, nil
}

func (r *reader) i32s() ([]int32, error) {
	n, err := r.count(4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int32, n)
	for i := range out {
		if out[i], err = r.i32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, r.data[r.off:r.off+n])
	r.off += n
	return out, nil
}

func (r *reader) edges() ([]pag.Edge, error) {
	n, err := r.count(edgeWireSize)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]pag.Edge, n)
	for i := range out {
		src, err := r.u32()
		if err != nil {
			return nil, err
		}
		dst, err := r.u32()
		if err != nil {
			return nil, err
		}
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		label, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(kind) >= pag.NumEdgeKinds {
			return nil, fmt.Errorf("edge %d has invalid kind %d", i, kind)
		}
		out[i] = pag.Edge{Src: pag.NodeID(src), Dst: pag.NodeID(dst), Kind: pag.EdgeKind(kind), Label: int32(label)}
	}
	return out, nil
}

// done verifies the section payload was consumed exactly.
func (r *reader) done() error {
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing bytes", r.remaining())
	}
	return nil
}

package persist

import (
	"errors"
	"fmt"

	"dynsum/internal/persist/journal"
)

// The persistence error taxonomy extends the engine's two-class scheme
// (DESIGN.md §12) across the process-death boundary:
//
//   - Recoverable damage is handled silently: a torn snapshot temp file is
//     ignored (the rename never landed, the previous snapshot is intact)
//     and a torn journal tail is truncated (the crash died mid-append; the
//     record was never acknowledged). Neither surfaces as an error.
//   - Fatal damage is typed and loud: *CorruptSnapshotError and
//     *CorruptJournalError mean bytes that were once acknowledged as
//     durable no longer verify — bit-rot, external truncation, or a foreign
//     file. Open refuses to serve from them; nothing is silently dropped.

// ErrSnapshotVersion is the sentinel matched (errors.Is) by the error of
// opening a snapshot written by an incompatible format version. The file
// is intact — this is a software-skew condition, not corruption.
var ErrSnapshotVersion = errors.New("persist: snapshot format version not supported")

// CorruptJournalError re-exports the journal's fatal corruption error; see
// the package comment of internal/persist/journal for the torn-tail rule
// that separates it from recoverable crash damage.
type CorruptJournalError = journal.CorruptJournalError

// CorruptSnapshotError reports a snapshot file whose bytes do not verify:
// damaged framing, a section CRC mismatch, or section contents that fail
// structural validation. Err (when set) is the underlying cause, exposed
// to errors.As/Is.
type CorruptSnapshotError struct {
	Path    string // snapshot file, "" when decoding raw bytes
	Section string // section name, "" for file-level framing damage
	Offset  int64  // byte offset of the damage, -1 when inside a decoded section
	Reason  string
	Err     error
}

func (e *CorruptSnapshotError) Error() string {
	where := "snapshot"
	if e.Path != "" {
		where = e.Path
	}
	if e.Section != "" {
		where += " section " + e.Section
	}
	msg := fmt.Sprintf("persist: %s corrupt: %s", where, e.Reason)
	if e.Offset >= 0 {
		msg += fmt.Sprintf(" (offset %d)", e.Offset)
	}
	return msg
}

// Unwrap exposes the underlying cause to errors chains.
func (e *CorruptSnapshotError) Unwrap() error { return e.Err }

// corrupt builds a file-framing corruption error.
func corrupt(offset int64, format string, args ...any) *CorruptSnapshotError {
	return &CorruptSnapshotError{Offset: offset, Reason: fmt.Sprintf(format, args...)}
}

// corruptSection wraps damage localised to one decoded section.
func corruptSection(section string, err error) *CorruptSnapshotError {
	return &CorruptSnapshotError{Section: section, Offset: -1, Reason: err.Error(), Err: err}
}

// Benchmarks regenerating each paper table/figure (run with
// go test -bench=. -benchmem) plus the ablations DESIGN.md calls out.
//
// Every benchmark reports machine-independent work counters alongside
// ns/op: edges/op (PAG edge traversals) and, where relevant, summaries.
package dynsum_test

import (
	"fmt"
	"io"
	"testing"

	dynsum "dynsum"
	"dynsum/internal/benchgen"
	"dynsum/internal/cfl"
	"dynsum/internal/clients"
	"dynsum/internal/core"
	"dynsum/internal/fixture"
	"dynsum/internal/harness"
	"dynsum/internal/refine"
	"dynsum/internal/stasum"
)

// benchScale keeps the suite fast; cmd/experiments raises it for the
// paper-shaped runs recorded in EXPERIMENTS.md.
const benchScale = 0.01

var benchOpts = harness.Options{Scale: benchScale, Seed: 1}

// BenchmarkTable1Trace: the Figure 2 motivating example, both queries,
// tracing enabled (paper Table 1).
func BenchmarkTable1Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.RunTable1()
		if res.S2Reused == 0 {
			b.Fatal("no reuse")
		}
	}
}

// BenchmarkTable3Generate: synthetic benchmark generation (paper Table 3),
// one sub-benchmark per program.
func BenchmarkTable3Generate(b *testing.B) {
	for _, p := range benchgen.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			b.ReportAllocs()
			sp := p.Scaled(benchScale)
			for i := 0; i < b.N; i++ {
				prog := benchgen.Generate(sp, 1)
				if prog.G.NumNodes() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkTable4: engine × client on the three Figure 4 benchmarks
// (paper Table 4). Edges/op makes the speedups machine-independent.
func BenchmarkTable4(b *testing.B) {
	for _, bench := range harness.Figure4Benchmarks {
		p := benchgen.ProfileByNameMust(bench).Scaled(benchScale)
		prog := benchgen.Generate(p, 1)
		for _, client := range clients.Names() {
			for _, eng := range harness.EngineNames {
				b.Run(fmt.Sprintf("%s/%s/%s", bench, client, eng), func(b *testing.B) {
					var edges int64
					for i := 0; i < b.N; i++ {
						a := newEngineByName(eng, prog)
						if _, err := clients.Run(client, prog, a); err != nil {
							b.Fatal(err)
						}
						edges = a.Metrics().EdgesTraversed
					}
					b.ReportMetric(float64(edges), "edges/op")
				})
			}
		}
	}
}

func newEngineByName(name string, prog *dynsum.Program) core.Analysis {
	switch name {
	case "NOREFINE":
		return refine.NewNoRefine(prog.G, core.Config{}, nil)
	case "REFINEPTS":
		return refine.NewRefinePts(prog.G, core.Config{}, nil)
	default:
		return core.NewDynSum(prog.G, core.Config{}, nil)
	}
}

// BenchmarkFigure4Batches: the batched DYNSUM-vs-REFINEPTS runs behind
// paper Figure 4 (soot-c, NullDeref — the paper's strongest case).
func BenchmarkFigure4Batches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := harness.RunFigure4(benchOpts, "soot-c", "NullDeref")
		if len(s.WorkRatio) == 0 {
			b.Fatal("no batches")
		}
	}
}

// BenchmarkFigure5Summaries: cumulative summary counting vs STASUM's
// offline pass (paper Figure 5).
func BenchmarkFigure5Summaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := harness.RunFigure5(benchOpts, "bloat", "SafeCast")
		if s.StaSumTotal == 0 {
			b.Fatal("no static summaries")
		}
	}
}

// BenchmarkAblationCache isolates the value of the summary cache: DYNSUM
// with and without it on the same client run (DESIGN.md ablation).
func BenchmarkAblationCache(b *testing.B) {
	p := benchgen.ProfileByNameMust("soot-c").Scaled(benchScale)
	prog := benchgen.Generate(p, 1)
	for _, disabled := range []bool{false, true} {
		name := "cache-on"
		if disabled {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				d := core.NewDynSum(prog.G, core.Config{}, nil)
				d.DisableCache = disabled
				clients.NullDeref(prog, d)
				edges = d.Metrics().EdgesTraversed
			}
			b.ReportMetric(float64(edges), "edges/op")
		})
	}
}

// BenchmarkAblationLocality sweeps the benchmark's locality (the paper's
// "scope of our optimisation" metric): DYNSUM's edge work per client run
// at 60/75/90% locality.
func BenchmarkAblationLocality(b *testing.B) {
	base := benchgen.ProfileByNameMust("soot-c")
	for _, pct := range []float64{60, 75, 90} {
		b.Run(fmt.Sprintf("locality%.0f", pct), func(b *testing.B) {
			prog := benchgen.Generate(base.WithLocality(pct).Scaled(benchScale), 1)
			var ratio float64
			for i := 0; i < b.N; i++ {
				d := core.NewDynSum(prog.G, core.Config{}, nil)
				r := refine.NewRefinePts(prog.G, core.Config{}, nil)
				clients.SafeCast(prog, d)
				clients.SafeCast(prog, r)
				if d.Metrics().EdgesTraversed > 0 {
					ratio = float64(r.Metrics().EdgesTraversed) / float64(d.Metrics().EdgesTraversed)
				}
			}
			b.ReportMetric(ratio, "refine/dynsum-edges")
		})
	}
}

// BenchmarkAblationStasumGamma sweeps STASUM's k-limit (the Yan et al.
// threshold): offline cost and summary count per bound.
func BenchmarkAblationStasumGamma(b *testing.B) {
	p := benchgen.ProfileByNameMust("jython").Scaled(benchScale)
	prog := benchgen.Generate(p, 1)
	for _, k := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("gamma%d", k), func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				e := stasum.New(prog.G, core.Config{}, nil, stasum.WithMaxGamma(k))
				total = e.SummaryCount()
			}
			b.ReportMetric(float64(total), "summaries")
		})
	}
}

// BenchmarkBatchPointsTo: the concurrent batch-query engine against the
// serial query loop on a Table 3 synthetic workload (soot-c, NullDeref
// sites — the paper's strongest batching case). Engines start cold each
// iteration so every run pays the same summary bill; the sub-benchmark
// ratio is the wall-clock speedup of the worker pool.
func BenchmarkBatchPointsTo(b *testing.B) {
	// A larger scale than the table benches: per-query cost must dominate
	// pool overhead for the parallelism measurement to be meaningful.
	p := benchgen.ProfileByNameMust("soot-c").Scaled(0.05)
	prog := benchgen.Generate(p, 1)
	queries, err := clients.Queries("NullDeref", prog)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := core.NewDynSum(prog.G, core.Config{}, nil)
			for _, q := range queries {
				d.PointsToCtx(q.Var, q.Ctx) //nolint:errcheck
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := core.NewDynSum(prog.G, core.Config{}, nil)
				d.BatchPointsTo(queries, workers)
			}
		})
	}
}

// BenchmarkPPTAQuery: single warm-cache DYNSUM query on Figure 2 (the
// engine's hot path).
func BenchmarkPPTAQuery(b *testing.B) {
	f := fixture.BuildFigure2()
	d := core.NewDynSum(f.Prog.G, core.Config{}, nil)
	if _, err := d.PointsTo(f.S1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.PointsTo(f.S2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPTAQueryInto: the same warm-cache query through the
// allocation-free path (frozen CSR graph, pooled scratch, caller-owned
// result set) — allocs/op must report 0, pinned by the core
// allocation-regression test.
func BenchmarkPPTAQueryInto(b *testing.B) {
	f := fixture.BuildFigure2()
	f.Prog.G.Freeze()
	d := core.NewDynSum(f.Prog.G, core.Config{}, nil)
	dst := core.NewPointsToSet()
	if err := d.PointsToInto(dst, f.S1); err != nil {
		b.Fatal(err)
	}
	if err := d.PointsToInto(dst, f.S2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.PointsToInto(dst, f.S2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCFLOracle: the generic cubic solver on the Figure 2 LFT
// encoding — the baseline DYNSUM's specialisation beats (paper §3.1).
func BenchmarkCFLOracle(b *testing.B) {
	f := fixture.BuildFigure2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := cfl.PointsToOracle(f.Prog.G); len(got) == 0 {
			b.Fatal("empty oracle")
		}
	}
}

// BenchmarkMiniJavaCompile: frontend throughput on the Figure 2 source.
func BenchmarkMiniJavaCompile(b *testing.B) {
	src := figure2Source()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := dynsum.CompileMiniJava("fig2", src); err != nil {
			b.Fatal(err)
		}
	}
}

func figure2Source() string {
	return `
class Vector {
  Object[] elems; int count;
  Vector() { Object[] t; t = new Object[8]; this.elems = t; }
  void add(Object p) { Object[] t; t = this.elems; t[this.count] = p; }
  Object get(int i) { Object[] t; t = this.elems; return t[i]; }
}
class Client {
  Vector vec;
  Client() {}
  Client(Vector v) { this.vec = v; }
  void set(Vector v) { this.vec = v; }
  Object retrieve() { Vector t; t = this.vec; return t.get(0); }
}
class Integer {}
class Main {
  static void main() {
    Vector v1; Vector v2; Client c1; Client c2; Object s1; Object s2;
    v1 = new Vector(); v1.add(new Integer()); c1 = new Client(v1);
    v2 = new Vector(); v2.add(new String()); c2 = new Client(); c2.set(v2);
    s1 = c1.retrieve(); s2 = c2.retrieve();
  }
}
`
}

// TestFacade exercises the public facade end to end.
func TestFacade(t *testing.T) {
	prog, info, err := dynsum.CompileMiniJava("fig2", figure2Source())
	if err != nil {
		t.Fatal(err)
	}
	engine := dynsum.NewDynSum(prog.G, dynsum.Config{})
	pts, err := engine.PointsTo(info.Var("Main.main.s1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts.Objects()) != 1 {
		t.Errorf("pts(s1) = %s", pts.FormatObjects(prog.G))
	}
	for _, c := range dynsum.Clients() {
		if _, err := dynsum.RunClient(c, prog, engine); err != nil {
			t.Fatal(err)
		}
	}
	bprog, err := dynsum.GenerateBenchmark("xalan", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sink countWriter
	if err := dynsum.SavePAG(&sink, bprog); err != nil {
		t.Fatal(err)
	}
	if sink == 0 {
		t.Error("SavePAG wrote nothing")
	}
	if _, err := dynsum.GenerateBenchmark("nope", 1, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if len(dynsum.BenchmarkNames()) != 9 {
		t.Errorf("BenchmarkNames = %v", dynsum.BenchmarkNames())
	}
}

type countWriter int

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

var _ io.Writer = (*countWriter)(nil)
